//! Regenerate every table and figure of the paper's evaluation section and
//! print them as markdown (the source material of `EXPERIMENTS.md`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ontodq-bench --bin experiments            # everything
//! cargo run --release -p ontodq-bench --bin experiments -- table2  # one experiment
//! cargo run --release -p ontodq-bench --bin experiments -- --scale 4 scaling
//! ```
//!
//! Available experiment ids: `table1`, `table2`, `table3_4`, `table5`,
//! `example5`, `example7`, `fig1`, `fig2`, `classes`, `scaling`,
//! `chase_perf`, `intern_bench`, `service_throughput`, `recovery_bench`,
//! `query_perf`, `join_bench`, `retract_bench`, `faults_bench`,
//! `obs_bench`.
//!
//! `--scale N` multiplies the synthetic workload sizes of the scaling
//! experiments (`scaling`, `chase_perf`, `service_throughput`,
//! `recovery_bench`, `query_perf`); unknown ids or flags print usage and
//! exit non-zero.
//!
//! `chase_perf` additionally writes a machine-readable `BENCH_chase.json`
//! (naive vs semi-naive vs parallel chase timings, rounds, trigger counts,
//! tuples/sec, plus a regression note against the pre-interning storage
//! layer), `intern_bench` writes `BENCH_intern.json` (symbol intern/resolve
//! rates and interned-vs-string join-probe throughput),
//! `service_throughput` writes `BENCH_service.json` (queries/sec at 1/2/4/8
//! worker threads; incremental vs from-scratch re-chase latency per update
//! batch), `recovery_bench` writes `BENCH_persist.json` (restart
//! strategies — cold start from scratch vs snapshot + WAL-tail replay vs
//! full-WAL replay — and the WAL-append overhead on the incremental write
//! path), `query_perf` writes `BENCH_query.json` (demand-driven
//! magic-set chase vs full materialization, per query-selectivity class
//! across scales), `join_bench` writes `BENCH_join.json`
//! (materializing vs id-returning probe cost over the columnar arena,
//! hash vs worst-case-optimal join kernels on the Zipf-skewed triangle
//! workload, and per-trigger counter costs), and `retract_bench` writes
//! `BENCH_retract.json` (delete-and-rederive retraction vs from-scratch
//! re-chase of the surviving EDB, across scales), `faults_bench`
//! writes `BENCH_faults.json` (the fault-injection layer's disarmed cost
//! on the durable write path, plus a degradation / probe-recovery drill),
//! and `obs_bench` writes `BENCH_obs.json` (the chase profiler's overhead:
//! semi-naive chase with per-rule profiling on vs off, CI-guarded to a
//! <= 3% ratio) so future changes have a perf trajectory to compare
//! against.

use ontodq_bench::{compiled_hospital, compiled_hospital_with_discharge, upward_only_hospital};
use ontodq_bench::{fmt_duration, MarkdownTable};
use ontodq_core::clean_query::{plain_answers, quality_answers};
use ontodq_core::{assess, scenarios};
use ontodq_datalog::analysis;
use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, navigation};
use ontodq_qa::{answer_by_rewriting, ConjunctiveQuery, DeterministicWsqAns, MaterializedEngine};
use ontodq_relational::{Tuple, Value};
use ontodq_workload::{generate, HospitalScale};
use std::time::Instant;

const EXPERIMENT_IDS: [&str; 19] = [
    "table1",
    "table2",
    "table3_4",
    "table5",
    "example5",
    "example7",
    "fig1",
    "fig2",
    "classes",
    "scaling",
    "chase_perf",
    "intern_bench",
    "service_throughput",
    "recovery_bench",
    "query_perf",
    "join_bench",
    "retract_bench",
    "faults_bench",
    "obs_bench",
];

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage: experiments [--scale N] [ID ...]\n\
         \n\
         Run the named experiments (all of them when no ID is given).\n\
         \n\
         options:\n\
         \x20 --scale N   multiply synthetic workload sizes by N (default 1);\n\
         \x20             affects scaling, chase_perf, service_throughput,\n\
         \x20             recovery_bench and query_perf\n\
         \n\
         experiment ids:\n\
         \x20 {}",
        EXPERIMENT_IDS.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(value) = arg.strip_prefix("--scale=") {
            scale = value
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad scale '{value}'")));
        } else if arg == "--scale" {
            let value = args
                .next()
                .unwrap_or_else(|| usage("--scale needs a number"));
            scale = value
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad scale '{value}'")));
        } else if arg == "--help" || arg == "-h" {
            usage("");
        } else if arg.starts_with('-') {
            usage(&format!("unknown flag '{arg}'"));
        } else if arg == "all" || EXPERIMENT_IDS.contains(&arg.as_str()) {
            ids.push(arg);
        } else {
            usage(&format!("unknown experiment '{arg}'"));
        }
    }
    if scale == 0 {
        usage("--scale must be at least 1");
    }
    let want = |id: &str| ids.is_empty() || ids.iter().any(|f| f == id || f == "all");

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("table3_4") {
        table3_4();
    }
    if want("table5") {
        table5();
    }
    if want("example5") {
        example5();
    }
    if want("example7") {
        example7();
    }
    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("classes") {
        classes();
    }
    if want("scaling") {
        scaling(scale);
    }
    if want("chase_perf") {
        chase_perf(scale);
    }
    if want("intern_bench") {
        intern_bench(scale);
    }
    if want("service_throughput") {
        service_throughput(scale);
    }
    if want("recovery_bench") {
        recovery_bench(scale);
    }
    if want("query_perf") {
        query_perf(scale);
    }
    if want("join_bench") {
        join_bench(scale);
    }
    if want("retract_bench") {
        retract_bench(scale);
    }
    if want("faults_bench") {
        faults_bench(scale);
    }
    if want("obs_bench") {
        obs_bench(scale);
    }
}

fn print_relation_table(title: &str, header: &[&str], tuples: &[Tuple]) {
    println!("### {title}\n");
    let mut table = MarkdownTable::new(header.iter().copied());
    for tuple in tuples {
        table.row(tuple.values().iter().map(|v| v.to_string()));
    }
    println!("{}", table.render());
}

/// Table I: the Measurements relation under assessment.
fn table1() {
    let db = hospital::measurements_database();
    let tuples = db.relation("Measurements").unwrap().tuples().to_vec();
    print_relation_table(
        "Table I — Measurements (instance under assessment)",
        &["Time", "Patient", "Value"],
        &tuples,
    );
}

/// Table II: the quality version of Measurements (Tom Waits' rows).
fn table2() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let start = Instant::now();
    let assessment = assess(&context, &instance);
    let elapsed = start.elapsed();
    let all = assessment.quality_tuples("Measurements");
    let toms: Vec<Tuple> = all
        .iter()
        .filter(|t| t.get(1) == Some(&Value::str(hospital::TOM_WAITS)))
        .cloned()
        .collect();
    print_relation_table(
        "Table II — Measurements^q restricted to Tom Waits (paper's Table II)",
        &["Time", "Patient", "Value"],
        &toms,
    );
    print_relation_table(
        "Full quality version Measurements^q (all patients)",
        &["Time", "Patient", "Value"],
        &all,
    );
    println!(
        "assessment: {} | {} | quality metrics: {}\n",
        fmt_duration(elapsed),
        assessment.chase.stats,
        assessment.metrics.relations.get("Measurements").unwrap()
    );
}

/// Tables III and IV: WorkingSchedules, Shifts, and the Shifts tuples
/// generated by downward navigation.
fn table3_4() {
    let ontology = hospital::ontology();
    let data = ontology.data();
    print_relation_table(
        "Table III — WorkingSchedules",
        &["Unit", "Day", "Nurse", "Type"],
        &data.relation("WorkingSchedules").unwrap().tuples(),
    );
    print_relation_table(
        "Table IV — Shifts (extensional)",
        &["Ward", "Day", "Nurse", "Shift"],
        &data.relation("Shifts").unwrap().tuples(),
    );
    let compiled = compiled_hospital();
    let chased = ontodq_chase::chase(&compiled.program, &compiled.database);
    let generated: Vec<Tuple> = chased
        .database
        .relation("Shifts")
        .unwrap()
        .iter()
        .filter(|t| !t.is_ground())
        .collect();
    print_relation_table(
        "Shifts tuples generated by downward navigation (rule (8); ⊥ = unknown shift)",
        &["Ward", "Day", "Nurse", "Shift"],
        &generated,
    );
}

/// Table V: DischargePatients and the form-(10) downward navigation it
/// triggers.
fn table5() {
    let ontology = hospital::ontology();
    print_relation_table(
        "Table V — DischargePatients",
        &["Institution", "Day", "Patient"],
        ontology
            .data()
            .relation("DischargePatients")
            .unwrap()
            .tuples()
            .as_slice(),
    );
    let compiled = compiled_hospital_with_discharge();
    let chased = ontodq_chase::chase(&compiled.program, &compiled.database);
    let invented: Vec<Tuple> = chased
        .database
        .relation("PatientUnit")
        .unwrap()
        .iter()
        .filter(|t| t.get(0).map(Value::is_null).unwrap_or(false))
        .collect();
    print_relation_table(
        "PatientUnit tuples generated by rule (9)/(10) (⊥ = unknown unit)",
        &["Unit", "Day", "Patient"],
        &invented,
    );
}

/// Example 5: Mark's shift dates via downward navigation, by both engines.
fn example5() {
    let compiled = compiled_hospital();
    let materialized = MaterializedEngine::new(&compiled.program, &compiled.database);
    let resolution = DeterministicWsqAns::new(&compiled.program, &compiled.database);
    println!("### Example 5 — Q'(d) ← Shifts(W2, d, Mark, s)\n");
    let mut table = MarkdownTable::new(["ward", "chase-based answers", "resolution-based answers"]);
    for ward in ["W1", "W2"] {
        let q =
            ConjunctiveQuery::parse(&format!("Q(d) :- Shifts({ward}, d, \"Mark\", s).")).unwrap();
        let a = materialized.certain_answers(&q);
        let b = resolution.answer_open(&q);
        table.row([
            ward.to_string(),
            format!(
                "{:?}",
                a.to_vec().iter().map(|t| t.to_string()).collect::<Vec<_>>()
            ),
            format!(
                "{:?}",
                b.to_vec().iter().map(|t| t.to_string()).collect::<Vec<_>>()
            ),
        ]);
    }
    println!("{}", table.render());
}

/// Example 7: the doctor's query, plain vs quality answers.
fn example7() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let assessment = assess(&context, &instance);
    println!("### Example 7 — the doctor's query, plain vs quality answers\n");
    let mut table = MarkdownTable::new(["query", "plain answers", "quality answers"]);
    let queries = [
        ("doctor's Sep/5 noon query", scenarios::doctors_query()),
        (
            "Tom Waits, all measurements",
            ConjunctiveQuery::parse("Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".").unwrap(),
        ),
        (
            "Tom Waits, Sep/7 (intensive ward)",
            ConjunctiveQuery::parse(
                "Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\", t >= @Sep/7-00:00, t <= @Sep/7-23:59.",
            )
            .unwrap(),
        ),
    ];
    for (label, q) in queries {
        let plain = plain_answers(&instance, &q);
        let quality = quality_answers(&context, &assessment, &q);
        table.row([
            label.to_string(),
            plain.len().to_string(),
            quality.len().to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// Figure 1: the dimensions and the navigation directions of the rules.
fn fig1() {
    println!("### Figure 1 — dimensions and categorical relations\n");
    let ontology = hospital::ontology();
    let mut dims = MarkdownTable::new(["dimension", "categories (bottom → top)", "members"]);
    for dim in ontology.dimensions().values() {
        let mut cats: Vec<String> = dim.schema().categories().iter().cloned().collect();
        cats.sort_by_key(|c| dim.schema().level_of(c));
        dims.row([
            dim.name().to_string(),
            cats.join(" → "),
            dim.member_count().to_string(),
        ]);
    }
    println!("{}", dims.render());

    let mut rels = MarkdownTable::new([
        "categorical relation",
        "links (attribute → dimension.category)",
    ]);
    for schema in ontology.relations().values() {
        let links: Vec<String> = schema
            .links()
            .iter()
            .map(|(pos, d, c)| format!("{} → {d}.{c}", schema.attributes()[*pos].name()))
            .collect();
        rels.row([schema.name().to_string(), links.join(", ")]);
    }
    println!("{}", rels.render());

    let mut nav = MarkdownTable::new(["dimensional rule", "direction"]);
    for (index, direction) in navigation::directions(&ontology) {
        let label = ontology.rules()[index]
            .label
            .clone()
            .unwrap_or_else(|| format!("rule #{index}"));
        nav.row([label, direction.to_string()]);
    }
    println!("{}", nav.render());
}

/// Figure 2: the context architecture, exercised end to end.
fn fig2() {
    println!("### Figure 2 — the MD context for quality assessment, end to end\n");
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let assessment = assess(&context, &instance);
    let mut table = MarkdownTable::new(["component", "summary"]);
    table.row([
        "instance D".to_string(),
        format!("{} Measurements tuples", instance.total_tuples()),
    ]);
    table.row(["context".to_string(), context.summary()]);
    table.row([
        "contextual instance after the chase".to_string(),
        format!(
            "{} relations, {} tuples ({} generated)",
            assessment.contextual_instance.relation_count(),
            assessment.contextual_instance.total_tuples(),
            assessment.chase.stats.tuples_added
        ),
    ]);
    table.row([
        "quality version D^q".to_string(),
        format!("{} tuples", assessment.quality_tuples("Measurements").len()),
    ]);
    table.row([
        "departure |D △ D^q|".to_string(),
        assessment.metrics.total_departure().to_string(),
    ]);
    table.row([
        "constraint violations surfaced".to_string(),
        assessment.chase.violations.len().to_string(),
    ]);
    println!("{}", table.render());
}

/// Section III claims: class membership and separability.
fn classes() {
    println!("### Section III claims — Datalog± class membership and separability\n");
    let mut table = MarkdownTable::new(["program", "class report", "EGDs separable"]);
    let base = compiled_hospital();
    table.row([
        "hospital (rules (7), (8), EGD (6))".to_string(),
        analysis::classify(&base.program).to_string(),
        analysis::check_program(&base.program)
            .all_separable()
            .to_string(),
    ]);
    let with10 = compiled_hospital_with_discharge();
    table.row([
        "hospital + form-(10) rule (9)".to_string(),
        analysis::classify(&with10.program).to_string(),
        analysis::check_program(&with10.program)
            .all_separable()
            .to_string(),
    ]);
    let mut with_unit_egd = hospital::ontology_with_discharge_rule();
    with_unit_egd
        .add_rule_text("u = u2 :- PatientUnit(u, d, p), PatientUnit(u2, d, p).")
        .unwrap();
    let compiled = compile(&with_unit_egd);
    table.row([
        "hospital + rule (9) + unit-level EGD".to_string(),
        analysis::classify(&compiled.program).to_string(),
        analysis::check_program(&compiled.program)
            .all_separable()
            .to_string(),
    ]);
    println!("{}", table.render());
}

/// Section IV claims: data-complexity scaling and rewriting vs chase.
fn scaling(scale: usize) {
    println!("### Section IV claims — scaling and strategy comparison\n");
    let mut table = MarkdownTable::new([
        "measurements",
        "chase tuples",
        "assess time",
        "quality tuples",
        "retention",
    ]);
    for &n in &[50usize, 100, 200, 400] {
        let workload = generate(&HospitalScale::with_measurements(n * scale));
        let context = workload.context();
        let start = Instant::now();
        let result = assess(&context, &workload.instance);
        let elapsed = start.elapsed();
        let metrics = result.metrics.relations.get("Measurements").unwrap();
        table.row([
            metrics.original_count.to_string(),
            result.chase.stats.tuples_added.to_string(),
            fmt_duration(elapsed),
            metrics.quality_count.to_string(),
            format!("{:.3}", metrics.retention_ratio()),
        ]);
    }
    println!("{}", table.render());

    println!("### FO rewriting vs chase-based answering (upward-only fragment)\n");
    let upward = upward_only_hospital();
    let compiled = compile(&upward);
    let q =
        ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".").unwrap();
    let start = Instant::now();
    let by_rewriting = answer_by_rewriting(&compiled.program, &compiled.database, &q);
    let rewriting_time = start.elapsed();
    let start = Instant::now();
    let engine = MaterializedEngine::new(&compiled.program, &compiled.database);
    let by_chase = engine.certain_answers(&q);
    let chase_time = start.elapsed();
    let mut table = MarkdownTable::new(["strategy", "answers", "time (includes setup)"]);
    table.row([
        "FO rewriting (no chase)".to_string(),
        by_rewriting.len().to_string(),
        fmt_duration(rewriting_time),
    ]);
    table.row([
        "chase + evaluate".to_string(),
        by_chase.len().to_string(),
        fmt_duration(chase_time),
    ]);
    println!("{}", table.render());
    assert_eq!(by_rewriting, by_chase);
}

/// Naive vs semi-naive vs parallel chase on the scaled hospital workload,
/// printed as markdown and written to `BENCH_chase.json` for machine
/// consumption.
fn chase_perf(scale: usize) {
    use ontodq_chase::{chase, chase_naive, chase_parallel};

    /// Semi-naive tuples/sec measured at the tip of PR 2, before the
    /// interned-symbol storage layer, at the seed `--scale 1` points
    /// (`(edb_tuples, tuples_per_second)`).  Kept as the regression
    /// baseline the JSON note compares against: throughput used to *fall*
    /// as the instance grew.
    const PRE_INTERNING_SEMINAIVE: [(usize, f64); 4] = [
        (828, 124_306.7),
        (1_218, 115_927.9),
        (1_968, 98_032.6),
        (3_468, 73_536.7),
    ];

    /// Semi-naive tuples/sec measured at the tip of PR 5, before the
    /// vectorized join engine and the staged batch firing path (per-trigger
    /// `Assignment` clones, `ground_atom` tuple materialization, separate
    /// head-satisfaction probe and insert), at the `--scale 1` points.
    /// The staged engine must stay at least 3x above the largest point.
    const PRE_STAGED_SEMINAIVE: [(usize, f64); 6] = [
        (828, 199_743.9),
        (1_218, 224_297.1),
        (1_968, 237_772.0),
        (3_468, 175_779.9),
        (6_468, 248_775.9),
        (12_468, 254_008.0),
    ];

    println!("### Chase engine — naive vs delta-driven semi-naive vs parallel\n");
    let mut table = MarkdownTable::new([
        "edb tuples",
        "chased tuples",
        "rounds",
        "fired",
        "naive",
        "semi-naive",
        "parallel",
        "speedup (semi)",
        "speedup (par)",
        "tuples/sec (semi)",
        "tuples/sec (par)",
    ]);

    /// Best-of-`runs` wall-clock of `f`, with the last result returned.
    fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (std::time::Duration, T) {
        let mut best = std::time::Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let start = Instant::now();
            let out = f();
            best = best.min(start.elapsed());
            last = Some(out);
        }
        (best, last.expect("runs >= 1"))
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut entries: Vec<String> = Vec::new();
    let mut seminaive_curve: Vec<(usize, f64)> = Vec::new();
    // The two largest points push the EDB past 8x the seed's smallest
    // instance, where the pre-interning curve had already collapsed.
    for &measurements in &[100usize, 200, 400, 800, 1600, 3200] {
        let workload = generate(&HospitalScale::with_measurements(measurements * scale));
        let compiled = compile(&workload.ontology);
        let edb = compiled.database.total_tuples();

        let (naive_time, naive_result) =
            time_best(5, || chase_naive(&compiled.program, &compiled.database));
        let (semi_time, semi_result) =
            time_best(5, || chase(&compiled.program, &compiled.database));
        let (par_time, par_result) =
            time_best(5, || chase_parallel(&compiled.program, &compiled.database));
        assert_eq!(
            naive_result.database.total_tuples(),
            semi_result.database.total_tuples(),
            "strategies disagree on the chased instance size"
        );
        assert_eq!(
            naive_result.database.total_tuples(),
            par_result.database.total_tuples(),
            "parallel strategy disagrees on the chased instance size"
        );

        let speedup = naive_time.as_secs_f64() / semi_time.as_secs_f64().max(1e-9);
        let par_speedup = naive_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9);
        let tuples_per_sec =
            semi_result.stats.tuples_added as f64 / semi_time.as_secs_f64().max(1e-9);
        let par_tuples_per_sec =
            par_result.stats.tuples_added as f64 / par_time.as_secs_f64().max(1e-9);
        seminaive_curve.push((edb, tuples_per_sec));
        let stats = &semi_result.stats;
        table.row([
            edb.to_string(),
            semi_result.database.total_tuples().to_string(),
            stats.rounds.to_string(),
            stats.triggers_fired.to_string(),
            fmt_duration(naive_time),
            fmt_duration(semi_time),
            fmt_duration(par_time),
            format!("{speedup:.2}x"),
            format!("{par_speedup:.2}x"),
            format!("{tuples_per_sec:.0}"),
            format!("{par_tuples_per_sec:.0}"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"edb_tuples\": {},\n",
                "      \"chased_tuples\": {},\n",
                "      \"rounds\": {},\n",
                "      \"triggers_fired\": {},\n",
                "      \"triggers_satisfied\": {},\n",
                "      \"tuples_added\": {},\n",
                "      \"naive_seconds\": {:.6},\n",
                "      \"seminaive_seconds\": {:.6},\n",
                "      \"parallel_seconds\": {:.6},\n",
                "      \"speedup\": {:.3},\n",
                "      \"parallel_speedup\": {:.3},\n",
                "      \"tuples_per_second\": {:.1},\n",
                "      \"tuples_per_second_parallel\": {:.1}\n",
                "    }}"
            ),
            edb,
            semi_result.database.total_tuples(),
            stats.rounds,
            stats.triggers_fired,
            stats.triggers_satisfied,
            stats.tuples_added,
            naive_time.as_secs_f64(),
            semi_time.as_secs_f64(),
            par_time.as_secs_f64(),
            speedup,
            par_speedup,
            tuples_per_sec,
            par_tuples_per_sec,
        ));
    }
    println!("{}", table.render());

    // Regression note: pre-interning throughput fell with scale; the
    // interned storage layer must hold (or raise) it.
    let (first_edb, first_tps) = seminaive_curve.first().copied().unwrap_or((0, 0.0));
    let (last_edb, last_tps) = seminaive_curve.last().copied().unwrap_or((0, 0.0));
    let (pre_first_edb, pre_first_tps) = PRE_INTERNING_SEMINAIVE[0];
    let (pre_last_edb, pre_last_tps) = PRE_INTERNING_SEMINAIVE[PRE_INTERNING_SEMINAIVE.len() - 1];
    let (staged_base_edb, staged_base_tps) = PRE_STAGED_SEMINAIVE[PRE_STAGED_SEMINAIVE.len() - 1];
    let regression_note = format!(
        "pre-interning (PR 2, Vec<Value::Str(String)> tuples, SipHash joins) semi-naive \
         throughput FELL from {:.0} tuples/s at {} EDB tuples to {:.0} at {}; \
         post-interning (Sym(u32) values, Arc<[Value]> tuples, FxHash joins) it reached \
         {:.0} tuples/s at {} EDB tuples (PR 5); the columnar join engine with the \
         staged batch firing path (row-id probes, binder-stack bindings, fused \
         satisfaction-check+insert) runs at {:.0} tuples/s at {} EDB tuples and {:.0} \
         at {} — the curve must stay monotone-or-flat (largest-scale >= smallest-scale) \
         and the largest point at least 3x the PR-5 baseline",
        pre_first_tps,
        pre_first_edb,
        pre_last_tps,
        pre_last_edb,
        staged_base_tps,
        staged_base_edb,
        first_tps,
        first_edb,
        last_tps,
        last_edb,
    );
    let pre_baseline: Vec<String> = PRE_INTERNING_SEMINAIVE
        .iter()
        .map(|(edb, tps)| {
            format!("    {{ \"edb_tuples\": {edb}, \"tuples_per_second\": {tps:.1} }}")
        })
        .collect();
    let staged_baseline: Vec<String> = PRE_STAGED_SEMINAIVE
        .iter()
        .map(|(edb, tps)| {
            format!("    {{ \"edb_tuples\": {edb}, \"tuples_per_second\": {tps:.1} }}")
        })
        .collect();
    println!("note: {regression_note}\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"chase_naive_vs_seminaive_vs_parallel\",\n",
            "  \"workload\": \"scaled_hospital\",\n",
            "  \"threads\": {},\n",
            "  \"regression_note\": \"{}\",\n",
            "  \"pre_interning_seminaive_baseline\": [\n{}\n  ],\n",
            "  \"pre_staged_seminaive_baseline\": [\n{}\n  ],\n",
            "  \"scales\": [\n{}\n  ]\n",
            "}}\n"
        ),
        threads,
        regression_note,
        pre_baseline.join(",\n"),
        staged_baseline.join(",\n"),
        entries.join(",\n")
    );
    let path = "BENCH_chase.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Microbenchmark of the interned storage layer: symbol intern/resolve
/// rates, and join-probe throughput of interned `Value` keys under the
/// FxHash shim vs raw `String` keys under SipHash (the pre-interning
/// representation) — printed as markdown and written to
/// `BENCH_intern.json`.
fn intern_bench(scale: usize) {
    use ontodq_relational::{FxHashMap, SymbolInterner};
    use std::collections::HashMap;

    println!("### Interned-symbol storage layer — microbenchmarks\n");
    let distinct = 50_000 * scale;
    let probes = 2_000_000usize;
    let strings: Vec<String> = (0..distinct)
        .map(|i| format!("member-{:02}-{i}", i % 97))
        .collect();

    // Interning throughput on a fresh, isolated table (cold: every string
    // is new and takes the write path once).
    let table = SymbolInterner::new();
    let start = Instant::now();
    let syms: Vec<ontodq_relational::Sym> = strings.iter().map(|s| table.intern(s)).collect();
    let cold = start.elapsed();

    // Re-interning (warm: read path only).
    let start = Instant::now();
    for s in &strings {
        std::hint::black_box(table.intern(s));
    }
    let warm = start.elapsed();

    // Resolution.
    let start = Instant::now();
    for &sym in &syms {
        std::hint::black_box(table.resolve(sym));
    }
    let resolve = start.elapsed();

    // Join-probe throughput: interned Value keys + FxHash vs the
    // pre-interning shape (owned String keys + SipHash).
    let values: Vec<Value> = strings.iter().map(Value::str).collect();
    let mut interned_map: FxHashMap<Value, usize> = FxHashMap::default();
    for (i, v) in values.iter().enumerate() {
        interned_map.insert(*v, i);
    }
    let start = Instant::now();
    let mut hits = 0usize;
    for i in 0..probes {
        let v = &values[(i * 31) % values.len()];
        if interned_map.contains_key(v) {
            hits += 1;
        }
    }
    let interned_probe = start.elapsed();
    assert_eq!(hits, probes);

    let mut string_map: HashMap<String, usize> = HashMap::new();
    for (i, s) in strings.iter().enumerate() {
        string_map.insert(s.clone(), i);
    }
    let start = Instant::now();
    let mut hits = 0usize;
    for i in 0..probes {
        let s = &strings[(i * 31) % strings.len()];
        if string_map.contains_key(s.as_str()) {
            hits += 1;
        }
    }
    let string_probe = start.elapsed();
    assert_eq!(hits, probes);

    let rate = |n: usize, d: std::time::Duration| n as f64 / d.as_secs_f64().max(1e-9);
    let probe_speedup = string_probe.as_secs_f64() / interned_probe.as_secs_f64().max(1e-9);
    let mut table_md = MarkdownTable::new(["operation", "ops", "elapsed", "ops/sec"]);
    table_md.row([
        "intern (cold, new symbols)".to_string(),
        distinct.to_string(),
        fmt_duration(cold),
        format!("{:.0}", rate(distinct, cold)),
    ]);
    table_md.row([
        "intern (warm, read path)".to_string(),
        distinct.to_string(),
        fmt_duration(warm),
        format!("{:.0}", rate(distinct, warm)),
    ]);
    table_md.row([
        "resolve".to_string(),
        distinct.to_string(),
        fmt_duration(resolve),
        format!("{:.0}", rate(distinct, resolve)),
    ]);
    table_md.row([
        "probe interned Value (FxHash)".to_string(),
        probes.to_string(),
        fmt_duration(interned_probe),
        format!("{:.0}", rate(probes, interned_probe)),
    ]);
    table_md.row([
        "probe String (SipHash, pre-interning)".to_string(),
        probes.to_string(),
        fmt_duration(string_probe),
        format!("{:.0}", rate(probes, string_probe)),
    ]);
    println!("{}", table_md.render());
    println!("probe speedup (interned vs string keys): {probe_speedup:.2}x\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"intern_bench\",\n",
            "  \"distinct_symbols\": {},\n",
            "  \"probes\": {},\n",
            "  \"intern_cold_per_second\": {:.1},\n",
            "  \"intern_warm_per_second\": {:.1},\n",
            "  \"resolve_per_second\": {:.1},\n",
            "  \"probe_interned_per_second\": {:.1},\n",
            "  \"probe_string_per_second\": {:.1},\n",
            "  \"probe_speedup\": {:.3}\n",
            "}}\n"
        ),
        distinct,
        probes,
        rate(distinct, cold),
        rate(distinct, warm),
        rate(distinct, resolve),
        rate(probes, interned_probe),
        rate(probes, string_probe),
        probe_speedup,
    );
    let path = "BENCH_intern.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// `ontodq-server` under load: read throughput against a snapshot at
/// 1/2/4/8 worker threads, and per-update-batch incremental re-chase
/// latency vs a from-scratch re-assessment — printed as markdown and
/// written to `BENCH_service.json`.
fn service_throughput(scale: usize) {
    use ontodq_server::{QualityService, WorkerPool};
    use std::sync::Arc;

    println!("### ontodq-server — snapshot read throughput and incremental re-chase\n");
    let measurements = 200 * scale;
    let workload = generate(&HospitalScale::with_measurements(measurements));
    let context = workload.context();
    let service = Arc::new(QualityService::new());
    service
        .register_context("scaled", context.clone(), workload.instance.clone())
        .expect("register the scaled context");

    // A mix of quality and plain query shapes over distinct patients, so the
    // prepared-query cache sees many keys rather than one hot entry.
    let patients: Vec<String> = (0..16).map(|p| format!("Patient_{p}")).collect();
    let queries: Vec<(String, bool)> = patients
        .iter()
        .enumerate()
        .map(|(index, patient)| {
            (
                format!("Measurements(t, p, v), p = \"{patient}\""),
                index % 2 == 0,
            )
        })
        .chain([
            ("PatientUnit(Unit_0, d, p)".to_string(), false),
            ("Measurements(t, p, v)".to_string(), true),
        ])
        .collect();

    // -------- read throughput at 1/2/4/8 workers --------
    let total_queries = 4_000 * scale;
    let mut table = MarkdownTable::new(["workers", "queries", "elapsed", "queries/sec"]);
    let mut throughput_entries: Vec<String> = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        let start = Instant::now();
        let receivers: Vec<_> = (0..total_queries)
            .map(|index| {
                let service = Arc::clone(&service);
                let (text, quality) = queries[index % queries.len()].clone();
                pool.submit(move || {
                    let response = if quality {
                        service.quality_answers("scaled", &text)
                    } else {
                        service.plain_answers("scaled", &text)
                    };
                    response.expect("bench queries answer").answers.len()
                })
            })
            .collect();
        let mut answered = 0usize;
        for receiver in receivers {
            answered += receiver
                .recv()
                .expect("worker delivers")
                .expect("bench jobs do not panic");
        }
        let elapsed = start.elapsed();
        let qps = total_queries as f64 / elapsed.as_secs_f64().max(1e-9);
        table.row([
            workers.to_string(),
            total_queries.to_string(),
            fmt_duration(elapsed),
            format!("{qps:.0}"),
        ]);
        throughput_entries.push(format!(
            "    {{ \"workers\": {workers}, \"queries\": {total_queries}, \"seconds\": {:.6}, \"queries_per_second\": {qps:.1}, \"answers\": {answered} }}",
            elapsed.as_secs_f64(),
        ));
    }
    println!("{}", table.render());

    // -------- incremental vs from-scratch re-chase per update batch --------
    println!("### update batches — incremental re-chase vs from-scratch\n");
    let batch_size = 10 * scale;
    let base: Vec<Tuple> = workload
        .instance
        .relation("Measurements")
        .expect("scaled instance has measurements")
        .tuples()
        .to_vec();
    let mut accumulated = workload.instance.clone();
    let mut table = MarkdownTable::new([
        "batch",
        "facts",
        "incremental",
        "from-scratch",
        "speedup",
        "derived",
    ]);
    let mut update_entries: Vec<String> = Vec::new();
    for batch_index in 0..5usize {
        // New readings at existing (time, patient) pairs with fresh values,
        // so they roll up through the Time dimension like real traffic.
        let batch: Vec<(String, Tuple)> = (0..batch_size)
            .map(|i| {
                let source = &base[(batch_index * batch_size + i) % base.len()];
                let value = 41.0 + (batch_index * batch_size + i) as f64 / 100.0;
                (
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        *source.get(0).unwrap(),
                        *source.get(1).unwrap(),
                        Value::double(value),
                    ]),
                )
            })
            .collect();
        for (name, tuple) in &batch {
            accumulated.insert(name, tuple.clone()).unwrap();
        }

        let report = service
            .insert_facts("scaled", batch)
            .expect("bench batches apply");
        let incremental = report.elapsed;

        let start = Instant::now();
        let scratch = assess(&context, &accumulated);
        let from_scratch = start.elapsed();

        let speedup = from_scratch.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
        table.row([
            report.version.to_string(),
            report.new_facts.to_string(),
            fmt_duration(incremental),
            fmt_duration(from_scratch),
            format!("{speedup:.1}x"),
            report.derived.to_string(),
        ]);
        update_entries.push(format!(
            "    {{ \"batch\": {}, \"facts\": {}, \"incremental_seconds\": {:.6}, \"from_scratch_seconds\": {:.6}, \"speedup\": {:.2}, \"derived\": {}, \"from_scratch_quality_tuples\": {} }}",
            report.version,
            report.new_facts,
            incremental.as_secs_f64(),
            from_scratch.as_secs_f64(),
            speedup,
            report.derived,
            scratch.quality_tuples("Measurements").len(),
        ));
    }
    println!("{}", table.render());

    let cache = service.cache_stats();
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"service_throughput\",\n",
            "  \"workload\": \"scaled_hospital\",\n",
            "  \"scale\": {},\n",
            "  \"measurements\": {},\n",
            "  \"throughput\": [\n{}\n  ],\n",
            "  \"updates\": [\n{}\n  ],\n",
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"invalidations\": {}, \"entries\": {} }}\n",
            "}}\n"
        ),
        scale,
        measurements,
        throughput_entries.join(",\n"),
        update_entries.join(",\n"),
        cache.hits,
        cache.misses,
        cache.invalidations,
        cache.entries,
    );
    let path = "BENCH_service.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Durable-restart strategies of `ontodq-store`: cold start from scratch
/// (full re-chase) vs snapshot + WAL-tail replay vs full-WAL replay, plus
/// the WAL-append overhead on the incremental write path — printed as
/// markdown and written to `BENCH_persist.json`.
fn recovery_bench(scale: usize) {
    use ontodq_server::QualityService;
    use ontodq_store::{Store, StoreConfig};
    use std::sync::{Arc, Mutex};

    println!("### ontodq-store — restart strategies and WAL overhead\n");
    let measurements = 200 * scale;
    let workload = generate(&HospitalScale::with_measurements(measurements));
    let context = workload.context();
    let base: Vec<Tuple> = workload
        .instance
        .relation("Measurements")
        .expect("scaled instance has measurements")
        .tuples()
        .to_vec();
    let batch_count = 10usize;
    let batch_size = 10 * scale;
    let snapshot_at = 8usize; // batches folded in before the checkpoint
    let batches: Vec<Vec<(String, Tuple)>> = (0..batch_count)
        .map(|batch_index| {
            (0..batch_size)
                .map(|i| {
                    let source = &base[(batch_index * batch_size + i) % base.len()];
                    let value = 41.0 + (batch_index * batch_size + i) as f64 / 100.0;
                    (
                        "Measurements".to_string(),
                        Tuple::new(vec![
                            *source.get(0).unwrap(),
                            *source.get(1).unwrap(),
                            Value::double(value),
                        ]),
                    )
                })
                .collect()
        })
        .collect();

    let scratch_dir = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "ontodq-recovery-bench-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };

    // -------- WAL-append overhead on the incremental write path --------
    // The same batch sequence through an in-memory service and a durable
    // one; per-batch apply latency (incremental re-chase + snapshot swap,
    // plus WAL append + fsync on the durable side).
    let mut mem_total = std::time::Duration::ZERO;
    {
        let service = QualityService::new();
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register in-memory context");
        for batch in &batches {
            mem_total += service
                .insert_facts("scaled", batch.clone())
                .expect("bench batches apply")
                .elapsed;
        }
    }
    let durable_dir = scratch_dir("overhead");
    let mut durable_total = std::time::Duration::ZERO;
    {
        let store = Store::open(&durable_dir, StoreConfig::default()).expect("open store");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register durable context");
        for batch in &batches {
            durable_total += service
                .insert_facts("scaled", batch.clone())
                .expect("bench batches apply")
                .elapsed;
        }
    }
    let mem_mean = mem_total.as_secs_f64() / batch_count as f64;
    let durable_mean = durable_total.as_secs_f64() / batch_count as f64;
    let overhead_ratio = durable_mean / mem_mean.max(1e-9);
    let _ = std::fs::remove_dir_all(&durable_dir);

    let mut table = MarkdownTable::new(["write path", "batches", "mean apply latency"]);
    table.row([
        "in-memory (no WAL)".to_string(),
        batch_count.to_string(),
        fmt_duration(std::time::Duration::from_secs_f64(mem_mean)),
    ]);
    table.row([
        "durable (WAL append + fsync)".to_string(),
        batch_count.to_string(),
        fmt_duration(std::time::Duration::from_secs_f64(durable_mean)),
    ]);
    println!("{}", table.render());
    println!("wal overhead ratio (durable / in-memory): {overhead_ratio:.3}x\n");

    // -------- restart strategies --------
    // Stage two data dirs: one checkpointed after `snapshot_at` batches
    // (snapshot + 2-batch tail) and one never checkpointed (full log).
    let snap_dir = scratch_dir("snap");
    {
        let store = Store::open(&snap_dir, StoreConfig::default()).expect("open store");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register");
        for batch in &batches[..snapshot_at] {
            service
                .insert_facts("scaled", batch.clone())
                .expect("apply");
        }
        service.persist_all().expect("checkpoint");
        for batch in &batches[snapshot_at..] {
            service
                .insert_facts("scaled", batch.clone())
                .expect("apply");
        }
    }
    let wal_dir = scratch_dir("wal");
    {
        let store = Store::open(&wal_dir, StoreConfig::default()).expect("open store");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register");
        for batch in &batches {
            service
                .insert_facts("scaled", batch.clone())
                .expect("apply");
        }
    }

    // (a) Cold start: re-chase everything from the accumulated facts.
    let mut accumulated = workload.instance.clone();
    for batch in &batches {
        for (name, tuple) in batch {
            accumulated.insert(name, tuple.clone()).expect("accumulate");
        }
    }
    let start = Instant::now();
    let cold_service = QualityService::new();
    cold_service
        .register_context("scaled", context.clone(), accumulated)
        .expect("cold start");
    let cold = start.elapsed();
    let cold_answers = cold_service
        .quality_answers("scaled", "Measurements(t, p, v)")
        .expect("cold answers")
        .answers
        .len();

    // (b) Snapshot + WAL-tail replay.
    let restart = |dir: &std::path::Path| {
        let start = Instant::now();
        let mut store = Store::open(dir, StoreConfig::default()).expect("open store");
        let mut recovery = store.recover().expect("recover");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        let summary = service
            .register_recovered(
                "scaled",
                context.clone(),
                workload.instance.clone(),
                &mut recovery,
            )
            .expect("register recovered");
        (start.elapsed(), service, summary)
    };
    let (snap_tail, snap_service, snap_summary) = restart(&snap_dir);
    assert!(snap_summary.restored_from_snapshot);
    assert_eq!(snap_summary.replayed_batches, batch_count - snapshot_at);

    // (c) Full-WAL replay (crash before the first checkpoint).
    let (full_replay, wal_service, wal_summary) = restart(&wal_dir);
    assert!(!wal_summary.restored_from_snapshot);
    assert_eq!(wal_summary.replayed_batches, batch_count);

    // All three restarts answer identically.
    for (label, service) in [("snapshot+tail", &snap_service), ("full-wal", &wal_service)] {
        let answers = service
            .quality_answers("scaled", "Measurements(t, p, v)")
            .expect("recovered answers")
            .answers
            .len();
        assert_eq!(answers, cold_answers, "{label} restart diverged");
    }
    let _ = std::fs::remove_dir_all(&snap_dir);
    let _ = std::fs::remove_dir_all(&wal_dir);

    let speedup = cold.as_secs_f64() / snap_tail.as_secs_f64().max(1e-9);
    let mut table = MarkdownTable::new(["restart strategy", "time", "vs cold start"]);
    table.row([
        "cold start (full re-chase)".to_string(),
        fmt_duration(cold),
        "1.00x".to_string(),
    ]);
    table.row([
        format!("snapshot + {}-batch WAL tail", batch_count - snapshot_at),
        fmt_duration(snap_tail),
        format!("{speedup:.2}x faster"),
    ]);
    table.row([
        format!("full-WAL replay ({batch_count} batches)"),
        fmt_duration(full_replay),
        format!(
            "{:.2}x",
            cold.as_secs_f64() / full_replay.as_secs_f64().max(1e-9)
        ),
    ]);
    println!("{}", table.render());

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"recovery_bench\",\n",
            "  \"workload\": \"scaled_hospital\",\n",
            "  \"scale\": {},\n",
            "  \"measurements\": {},\n",
            "  \"batches\": {},\n",
            "  \"batch_facts\": {},\n",
            "  \"snapshot_at_batch\": {},\n",
            "  \"wal_overhead\": {{\n",
            "    \"mem_batch_seconds_mean\": {:.6},\n",
            "    \"durable_batch_seconds_mean\": {:.6},\n",
            "    \"overhead_ratio\": {:.3}\n",
            "  }},\n",
            "  \"restart\": {{\n",
            "    \"cold_start_seconds\": {:.6},\n",
            "    \"snapshot_tail_seconds\": {:.6},\n",
            "    \"full_wal_replay_seconds\": {:.6},\n",
            "    \"snapshot_tail_speedup_vs_cold\": {:.3}\n",
            "  }},\n",
            "  \"recovered_quality_answers\": {},\n",
            "  \"restarts_agree\": true\n",
            "}}\n"
        ),
        scale,
        measurements,
        batch_count,
        batch_size,
        snapshot_at,
        mem_mean,
        durable_mean,
        overhead_ratio,
        cold.as_secs_f64(),
        snap_tail.as_secs_f64(),
        full_replay.as_secs_f64(),
        speedup,
        cold_answers,
    );
    let path = "BENCH_persist.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Demand-driven (magic-set restricted chase) vs full-materialization query
/// latency across the selectivity spectrum of `ontodq-workload`'s query
/// generator — printed as markdown and written to `BENCH_query.json`.
///
/// Both paths start from the same compiled-but-unchased contextual instance
/// (what a server holds right after registration parsing, before any
/// materialization): "full" chases the whole program then evaluates, the
/// paper's materialize-then-query baseline; "demand" magic-transforms the
/// quality-rewritten query and chases only the relevant fragment.  Answers
/// are asserted equal on every query.
fn query_perf(scale: usize) {
    use ontodq_core::{compile_context, rewrite_to_quality};
    use ontodq_workload::{generate_queries, Selectivity};

    println!("### Demand-driven (magic-set) vs full-materialization query answering\n");
    let mut table = MarkdownTable::new([
        "measurements",
        "query",
        "class",
        "answers",
        "full (chase+eval)",
        "demand (magic+chase+eval)",
        "speedup",
        "demanded tuples",
        "full tuples",
    ]);

    /// Best-of-`runs` wall-clock of `f`, with the last result returned.
    fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (std::time::Duration, T) {
        let mut best = std::time::Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let start = Instant::now();
            let out = f();
            best = best.min(start.elapsed());
            last = Some(out);
        }
        (best, last.expect("runs >= 1"))
    }

    let mut scale_entries: Vec<String> = Vec::new();
    let mut selective_speedup_at_largest = 0.0f64;
    let sizes = [100usize, 200, 400, 800];
    for (size_index, &measurements) in sizes.iter().enumerate() {
        let hospital_scale = HospitalScale::with_measurements(measurements * scale);
        let workload = generate(&hospital_scale);
        let context = workload.context();
        let (program, database) = compile_context(&context, &workload.instance);
        let queries = generate_queries(&hospital_scale, 2, 7);

        let mut query_entries: Vec<String> = Vec::new();
        let mut best_selective_speedup = 0.0f64;
        for spec in &queries {
            let query =
                ontodq_server::parse_query_text(&spec.text).expect("generated queries parse");
            let rewritten = rewrite_to_quality(&context, &query);

            let (full_time, full_answers) = time_best(3, || {
                let chased = ontodq_chase::chase(&program, &database);
                let tuples = ontodq_chase::evaluate_project(
                    &chased.database,
                    &rewritten.body,
                    &rewritten.answer_variables,
                );
                let answers: ontodq_qa::AnswerSet =
                    ontodq_qa::AnswerSet::from_tuples(tuples).certain();
                (answers, chased.stats.tuples_added)
            });
            let (demand_time, demand_answers) = time_best(3, || {
                let demand = ontodq_qa::answer_on_demand(&program, &database, &rewritten);
                (demand.answers, demand.chase.stats.tuples_added)
            });
            assert_eq!(
                full_answers.0, demand_answers.0,
                "demand vs full diverge on {} at {} measurements",
                spec.text, measurements
            );

            let speedup = full_time.as_secs_f64() / demand_time.as_secs_f64().max(1e-9);
            if spec.class != Selectivity::Broad {
                best_selective_speedup = best_selective_speedup.max(speedup);
            }
            table.row([
                (measurements * scale).to_string(),
                spec.label.clone(),
                spec.class.to_string(),
                full_answers.0.len().to_string(),
                fmt_duration(full_time),
                fmt_duration(demand_time),
                format!("{speedup:.1}x"),
                demand_answers.1.to_string(),
                full_answers.1.to_string(),
            ]);
            query_entries.push(format!(
                concat!(
                    "      {{ \"label\": \"{}\", \"class\": \"{}\", \"answers\": {}, ",
                    "\"full_seconds\": {:.6}, \"demand_seconds\": {:.6}, \"speedup\": {:.2}, ",
                    "\"demand_tuples_added\": {}, \"full_tuples_added\": {} }}"
                ),
                spec.label,
                spec.class,
                full_answers.0.len(),
                full_time.as_secs_f64(),
                demand_time.as_secs_f64(),
                speedup,
                demand_answers.1,
                full_answers.1,
            ));
        }
        if size_index == sizes.len() - 1 {
            selective_speedup_at_largest = best_selective_speedup;
        }
        scale_entries.push(format!(
            "    {{\n      \"measurements\": {},\n      \"queries\": [\n{}\n      ]\n    }}",
            measurements * scale,
            query_entries.join(",\n"),
        ));
    }
    println!("{}", table.render());
    println!(
        "selective speedup at largest scale (best point/narrow query): {selective_speedup_at_largest:.1}x\n"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"query_perf_demand_vs_materialize\",\n",
            "  \"workload\": \"scaled_hospital + querygen selectivity sweep\",\n",
            "  \"scale\": {},\n",
            "  \"selective_speedup_at_largest_scale\": {:.2},\n",
            "  \"note\": \"both paths start from the compiled, unchased contextual instance; ",
            "full = whole-program chase + evaluate, demand = magic-set transform + ",
            "relevance/binding-restricted chase + evaluate; answers asserted equal\",\n",
            "  \"scales\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        selective_speedup_at_largest,
        scale_entries.join(",\n"),
    );
    let path = "BENCH_query.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Microbenchmark of the columnar join engine, written to `BENCH_join.json`:
///
/// 1. **Probe cost** — the materializing `select` (the row-oriented API
///    edge: one `Tuple` allocation per matched row) vs the id-returning
///    `select_ids_into` (the join-internal path: row ids into a reused
///    buffer) over the skewed workload's hot-key relation.
/// 2. **Join kernels** — the forced hash path vs the forced
///    worst-case-optimal path (and the `Auto` planner) chasing the cyclic
///    triangle program over Zipf-skewed and uniform edges, with the
///    process-wide join counters diffed around each run and reported per
///    fired trigger (probes, galloping steps, WCO seeks, and tuple
///    materializations — the allocation proxy, since the workspace forbids
///    the `unsafe` a counting global allocator needs).
fn join_bench(scale: usize) {
    use ontodq_chase::{ChaseConfig, ChaseEngine, JoinEngine};
    use ontodq_relational::{counters, RelationInstance, RelationSchema, StampWindow};
    use ontodq_workload::{generate_skewed, SkewedScale};

    fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (std::time::Duration, T) {
        let mut best = std::time::Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let start = Instant::now();
            let out = f();
            best = best.min(start.elapsed());
            last = Some(out);
        }
        (best, last.expect("runs >= 1"))
    }

    println!("### Join engine — probe cost and kernel comparison\n");

    // --- 1. Row-materializing vs id-returning probes. -------------------
    let probe_workload = generate_skewed(&SkewedScale::with_edges(4_000 * scale));
    let source = probe_workload
        .database
        .relation("R")
        .expect("the skewed workload always has R");
    let mut relation = RelationInstance::new(RelationSchema::untyped("R", 2));
    for tuple in source.iter() {
        relation.insert(tuple).unwrap();
    }
    relation.build_index(0);
    let keys: Vec<_> = relation
        .column(0)
        .expect("binary relation")
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let rounds = 64usize;

    let before_rows = counters::snapshot();
    let (row_time, row_matched) = time_best(3, || {
        let mut matched = 0usize;
        for _ in 0..rounds {
            for key in &keys {
                matched += relation.select(&[(0, key)]).len();
            }
        }
        matched
    });
    let row_materialized = counters::snapshot().since(&before_rows).materializations;

    let mut ids = Vec::new();
    let before_ids = counters::snapshot();
    let (id_time, id_matched) = time_best(3, || {
        let mut matched = 0usize;
        for _ in 0..rounds {
            for key in &keys {
                ids.clear();
                relation.select_ids_into(&[(0, *key)], StampWindow::all(), &mut ids);
                matched += ids.len();
            }
        }
        matched
    });
    let id_materialized = counters::snapshot().since(&before_ids).materializations;
    assert_eq!(row_matched, id_matched, "probe paths disagree on matches");

    let probes = rounds * keys.len();
    let probe_speedup = row_time.as_secs_f64() / id_time.as_secs_f64().max(1e-9);
    let mut probe_table = MarkdownTable::new([
        "probe path",
        "probes",
        "matched rows",
        "time",
        "ns/probe",
        "tuples materialized",
    ]);
    for (label, time, materialized) in [
        ("select (materializing)", row_time, row_materialized),
        ("select_ids_into (id-returning)", id_time, id_materialized),
    ] {
        probe_table.row([
            label.to_string(),
            probes.to_string(),
            row_matched.to_string(),
            fmt_duration(time),
            format!("{:.0}", time.as_secs_f64() * 1e9 / probes as f64),
            materialized.to_string(),
        ]);
    }
    println!("{}", probe_table.render());
    println!("note: id-returning probes are {probe_speedup:.2}x faster and allocation-free\n");

    // --- 2. Hash vs worst-case-optimal kernels on the triangle chase. ---
    let mut kernel_table = MarkdownTable::new([
        "edges/rel",
        "skew",
        "kernel",
        "triangles",
        "time",
        "probes/trigger",
        "gallops/trigger",
        "wco seeks/trigger",
        "materializations/trigger",
    ]);
    let mut kernel_entries: Vec<String> = Vec::new();
    let mut skewed_speedup = 0.0f64;
    for (skew_label, base) in [
        ("zipf-1.1", SkewedScale::with_edges(600 * scale)),
        ("uniform", SkewedScale::with_edges(600 * scale).uniform()),
    ] {
        let workload = generate_skewed(&base);
        let mut per_kernel: Vec<(String, f64)> = Vec::new();
        for (kernel_label, engine) in [
            ("hash", JoinEngine::Hash),
            ("leapfrog", JoinEngine::Leapfrog),
            ("auto", JoinEngine::Auto),
        ] {
            let run = || {
                ChaseEngine::new(ChaseConfig::with_join(engine))
                    .run(&workload.program, &workload.database)
            };
            let (time, result) = time_best(3, run);
            let before = counters::snapshot();
            let counted = run();
            let delta = counters::snapshot().since(&before);
            let triggers = counted.stats.triggers_fired.max(1) as f64;
            let triangles = result
                .database
                .relation("Tri")
                .map(|r| r.len())
                .unwrap_or(0);
            per_kernel.push((kernel_label.to_string(), time.as_secs_f64()));
            kernel_table.row([
                base.edges.to_string(),
                skew_label.to_string(),
                kernel_label.to_string(),
                triangles.to_string(),
                fmt_duration(time),
                format!("{:.2}", delta.probes as f64 / triggers),
                format!("{:.2}", delta.gallop_seeks as f64 / triggers),
                format!("{:.2}", delta.wco_seeks as f64 / triggers),
                format!("{:.2}", delta.materializations as f64 / triggers),
            ]);
            kernel_entries.push(format!(
                concat!(
                    "    {{\n",
                    "      \"edges_per_relation\": {},\n",
                    "      \"skew\": \"{}\",\n",
                    "      \"kernel\": \"{}\",\n",
                    "      \"triangles\": {},\n",
                    "      \"seconds\": {:.6},\n",
                    "      \"triggers_fired\": {},\n",
                    "      \"probes_per_trigger\": {:.3},\n",
                    "      \"gallop_seeks_per_trigger\": {:.3},\n",
                    "      \"wco_seeks_per_trigger\": {:.3},\n",
                    "      \"materializations_per_trigger\": {:.3}\n",
                    "    }}"
                ),
                base.edges,
                skew_label,
                kernel_label,
                triangles,
                time.as_secs_f64(),
                counted.stats.triggers_fired,
                delta.probes as f64 / triggers,
                delta.gallop_seeks as f64 / triggers,
                delta.wco_seeks as f64 / triggers,
                delta.materializations as f64 / triggers,
            ));
        }
        if skew_label.starts_with("zipf") {
            let hash = per_kernel.iter().find(|(k, _)| k == "hash").unwrap().1;
            let wco = per_kernel.iter().find(|(k, _)| k == "leapfrog").unwrap().1;
            skewed_speedup = hash / wco.max(1e-9);
        }
    }
    println!("{}", kernel_table.render());
    println!("note: on the skewed triangle the worst-case-optimal kernel is {skewed_speedup:.2}x the hash kernel\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"join_bench\",\n",
            "  \"workload\": \"skewed triangle (R,S,T + Tri/Wedge program)\",\n",
            "  \"scale\": {},\n",
            "  \"probe\": {{\n",
            "    \"probes\": {},\n",
            "    \"matched_rows\": {},\n",
            "    \"select_seconds\": {:.6},\n",
            "    \"select_ids_into_seconds\": {:.6},\n",
            "    \"select_tuples_materialized\": {},\n",
            "    \"select_ids_into_tuples_materialized\": {},\n",
            "    \"id_path_speedup\": {:.3}\n",
            "  }},\n",
            "  \"skewed_wco_over_hash_speedup\": {:.3},\n",
            "  \"note\": \"materializations count Arc<[Value]> tuple builds, the observable ",
            "allocation proxy (no unsafe, so no counting global allocator); kernel runs are ",
            "whole chases of the cyclic triangle program, counters diffed per fired trigger\",\n",
            "  \"kernels\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        probes,
        row_matched,
        row_time.as_secs_f64(),
        id_time.as_secs_f64(),
        row_materialized,
        id_materialized,
        probe_speedup,
        skewed_speedup,
        kernel_entries.join(",\n"),
    );
    let path = "BENCH_join.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Delete-and-rederive retraction vs from-scratch re-chase of the surviving
/// EDB, across scaled-hospital sizes — printed as markdown and written to
/// `BENCH_retract.json`.
///
/// For each scale, ~5% of the `Measurements` instance is retracted as one
/// batch.  The DRed column times [`ontodq_core::ResumableAssessment::retract_batch`]
/// on a fully-chased assessment; the from-scratch column times building a
/// fresh assessment (full chase) over the surviving instance — what the
/// server would pay for every correction without the retraction subsystem.
/// Both paths must agree on the resulting quality versions.
fn retract_bench(scale: usize) {
    use ontodq_core::ResumableAssessment;

    println!("### Retraction — delete-and-rederive vs from-scratch re-chase\n");
    let mut table = MarkdownTable::new([
        "measurements",
        "edb tuples",
        "retracted",
        "cascaded",
        "rederived",
        "dred",
        "from-scratch",
        "speedup",
    ]);

    let mut entries: Vec<String> = Vec::new();
    for &measurements in &[100usize, 200, 400, 800] {
        let workload = generate(&HospitalScale::with_measurements(measurements * scale));
        let context = workload.context();
        let live = workload.instance.relation("Measurements").unwrap().len();
        let victims: Vec<(String, Tuple)> = workload
            .instance
            .relation("Measurements")
            .unwrap()
            .iter()
            .take((live / 20).max(1))
            .map(|tuple| ("Measurements".to_string(), tuple))
            .collect();
        let mut surviving = workload.instance.clone();
        for (relation, tuple) in &victims {
            surviving.delete(relation, tuple);
        }

        // DRed: the retraction step alone, on a fully-chased assessment
        // (rebuilt per run — retraction mutates the writer).
        let mut dred_time = std::time::Duration::MAX;
        let mut stats = None;
        let mut dred_quality = None;
        for _ in 0..3 {
            let mut writer = ResumableAssessment::new(context.clone(), workload.instance.clone());
            let start = Instant::now();
            let result = writer.retract_batch(victims.iter().cloned());
            dred_time = dred_time.min(start.elapsed());
            stats = Some(result.stats);
            dred_quality = Some(writer.extract().0);
        }
        let stats = stats.expect("runs >= 1");

        // From-scratch: a full chase of the surviving instance.
        let mut scratch_time = std::time::Duration::MAX;
        let mut scratch_quality = None;
        for _ in 0..3 {
            let start = Instant::now();
            let writer = ResumableAssessment::new(context.clone(), surviving.clone());
            scratch_time = scratch_time.min(start.elapsed());
            scratch_quality = Some(writer.extract().0);
        }

        // Both paths must land on the same quality versions.
        let dred_quality = dred_quality.expect("runs >= 1");
        let scratch_quality = scratch_quality.expect("runs >= 1");
        assert_eq!(
            dred_quality.total_tuples(),
            scratch_quality.total_tuples(),
            "DRed and from-scratch disagree on the quality versions"
        );

        let edb = workload.instance.total_tuples();
        let speedup = scratch_time.as_secs_f64() / dred_time.as_secs_f64().max(1e-9);
        table.row([
            (measurements * scale).to_string(),
            edb.to_string(),
            stats.retracted.to_string(),
            stats.cascaded.to_string(),
            stats.rederived.to_string(),
            fmt_duration(dred_time),
            fmt_duration(scratch_time),
            format!("{speedup:.2}x"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"measurements\": {},\n",
                "      \"edb_tuples\": {},\n",
                "      \"requested\": {},\n",
                "      \"retracted\": {},\n",
                "      \"cascaded\": {},\n",
                "      \"rederived\": {},\n",
                "      \"dred_seconds\": {:.6},\n",
                "      \"scratch_seconds\": {:.6},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            measurements * scale,
            edb,
            stats.requested,
            stats.retracted,
            stats.cascaded,
            stats.rederived,
            dred_time.as_secs_f64(),
            scratch_time.as_secs_f64(),
            speedup,
        ));
    }
    println!("{}", table.render());

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"retract_dred_vs_scratch\",\n",
            "  \"workload\": \"scaled_hospital\",\n",
            "  \"note\": \"dred_seconds times ResumableAssessment::retract_batch (cascade + \
             tombstone + rederive) on a chased assessment; scratch_seconds times a full \
             fresh chase of the surviving EDB; DRed must be faster at every scale\",\n",
            "  \"scales\": [\n{}\n  ]\n",
            "}}\n"
        ),
        entries.join(",\n")
    );
    let path = "BENCH_retract.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The fault-injection layer's price when nothing is armed, and a
/// degradation drill through the health machine — printed as markdown and
/// written to `BENCH_faults.json`.
///
/// Every WAL write/fsync and snapshot write/rename in `ontodq-store` now
/// routes through an [`ontodq_store::IoPolicy`] decision point.  The bench
/// answers two questions: (1) what does that indirection cost on the
/// durable write path when the policy is the default passthrough vs an
/// armed-but-empty [`ontodq_store::FaultSchedule`] (a mutex acquisition
/// per guarded op), and (2) how expensive is the degradation round-trip —
/// a WAL fsync failure flips the service read-only, later writes are
/// refused at the admission check (no chase work), and one recovery probe
/// (`persist_all`) restores service.
fn faults_bench(scale: usize) {
    use ontodq_server::{QualityService, ServiceError};
    use ontodq_store::{FaultSchedule, IoOp, SharedIoPolicy, Store, StoreConfig};
    use std::sync::{Arc, Mutex};

    println!("### ontodq-store — fault-injection layer overhead and degradation drill\n");
    let measurements = 200 * scale;
    let workload = generate(&HospitalScale::with_measurements(measurements));
    let context = workload.context();
    let base: Vec<Tuple> = workload
        .instance
        .relation("Measurements")
        .expect("scaled instance has measurements")
        .tuples()
        .to_vec();
    let batch_count = 10usize;
    let batch_size = 10 * scale;
    let batches: Vec<Vec<(String, Tuple)>> = (0..batch_count)
        .map(|batch_index| {
            (0..batch_size)
                .map(|i| {
                    let source = &base[(batch_index * batch_size + i) % base.len()];
                    let value = 41.0 + (batch_index * batch_size + i) as f64 / 100.0;
                    (
                        "Measurements".to_string(),
                        Tuple::new(vec![
                            *source.get(0).unwrap(),
                            *source.get(1).unwrap(),
                            Value::double(value),
                        ]),
                    )
                })
                .collect()
        })
        .collect();

    let scratch_dir = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("ontodq-faults-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };

    // -------- disarmed overhead on the durable write path --------
    let run_batches = |service: &QualityService| {
        let mut total = std::time::Duration::ZERO;
        for batch in &batches {
            total += service
                .insert_facts("scaled", batch.clone())
                .expect("bench batches apply")
                .elapsed;
        }
        total.as_secs_f64() / batch_count as f64
    };

    // Untimed warmup so neither timed run pays the cold file-system and
    // allocator costs of the very first durable apply sequence.
    let warm_dir = scratch_dir("warmup");
    {
        let store = Store::open(&warm_dir, StoreConfig::default()).expect("open store");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register warmup context");
        run_batches(&service);
    }
    let _ = std::fs::remove_dir_all(&warm_dir);

    let pass_dir = scratch_dir("passthrough");
    let passthrough_mean = {
        let store = Store::open(&pass_dir, StoreConfig::default()).expect("open store");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register passthrough context");
        run_batches(&service)
    };
    let _ = std::fs::remove_dir_all(&pass_dir);

    let armed_dir = scratch_dir("armed");
    let armed_mean = {
        // An armed but empty schedule: every guarded op consults the
        // policy mutex and gets `Pass`.
        let policy: SharedIoPolicy = Arc::new(Mutex::new(FaultSchedule::new()));
        let store =
            Store::open_with_policy(&armed_dir, StoreConfig::default(), policy).expect("open");
        let service = QualityService::with_store(Arc::new(Mutex::new(store)));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .expect("register armed context");
        run_batches(&service)
    };
    let _ = std::fs::remove_dir_all(&armed_dir);
    let overhead_ratio = armed_mean / passthrough_mean.max(1e-9);

    let mut table = MarkdownTable::new(["write path", "batches", "mean apply latency"]);
    table.row([
        "durable, passthrough policy".to_string(),
        batch_count.to_string(),
        fmt_duration(std::time::Duration::from_secs_f64(passthrough_mean)),
    ]);
    table.row([
        "durable, armed empty schedule".to_string(),
        batch_count.to_string(),
        fmt_duration(std::time::Duration::from_secs_f64(armed_mean)),
    ]);
    println!("{}", table.render());
    println!("fault-layer overhead ratio (armed / passthrough): {overhead_ratio:.3}x\n");

    // -------- degradation drill --------
    // Fail the third WAL fsync: two batches ack, one lands in limbo, the
    // rest are refused read-only; a single probe checkpoint heals.
    let drill_dir = scratch_dir("drill");
    let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
    schedule
        .lock()
        .expect("plan lock")
        .fail_nth(IoOp::WalFsync, 2);
    let policy: SharedIoPolicy = schedule;
    let store = Store::open_with_policy(&drill_dir, StoreConfig::default(), policy).expect("open");
    let service = QualityService::with_store(Arc::new(Mutex::new(store)));
    service.set_probe_interval(std::time::Duration::from_secs(3600));
    service
        .register_context("scaled", context.clone(), workload.instance.clone())
        .expect("register drill context");
    let mut acked = 0usize;
    let mut limbo = 0usize;
    let mut refused = 0usize;
    let mut refusal_total = std::time::Duration::ZERO;
    for batch in &batches {
        let start = Instant::now();
        match service.insert_facts("scaled", batch.clone()) {
            Ok(_) => acked += 1,
            Err(ServiceError::Store(_)) => limbo += 1,
            Err(ServiceError::Degraded(_)) => {
                refused += 1;
                refusal_total += start.elapsed();
            }
            Err(e) => panic!("drill: unexpected error: {e}"),
        }
    }
    let refusal_mean = refusal_total.as_secs_f64() / refused.max(1) as f64;
    let probe_start = Instant::now();
    service.persist_all().expect("the probe checkpoint heals");
    let probe_seconds = probe_start.elapsed().as_secs_f64();
    let healthy_after_probe = matches!(service.health().state, ontodq_server::Health::Healthy);
    let post_probe_write_ok = service.insert_facts("scaled", batches[0].clone()).is_ok();
    let _ = std::fs::remove_dir_all(&drill_dir);

    println!(
        "degradation drill: acked={acked} limbo={limbo} refused={refused} \
         (mean refusal {}), probe checkpoint {} -> healthy={healthy_after_probe}\n",
        fmt_duration(std::time::Duration::from_secs_f64(refusal_mean)),
        fmt_duration(std::time::Duration::from_secs_f64(probe_seconds)),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": {},\n",
            "  \"measurements\": {},\n",
            "  \"batches\": {},\n",
            "  \"batch_size\": {},\n",
            "  \"write_path\": {{\n",
            "    \"passthrough_mean_seconds\": {:.6},\n",
            "    \"armed_schedule_mean_seconds\": {:.6},\n",
            "    \"overhead_ratio\": {:.3}\n",
            "  }},\n",
            "  \"degradation_drill\": {{\n",
            "    \"acked_batches\": {},\n",
            "    \"limbo_batches\": {},\n",
            "    \"refused_writes\": {},\n",
            "    \"refusal_mean_seconds\": {:.9},\n",
            "    \"probe_seconds\": {:.6},\n",
            "    \"healthy_after_probe\": {},\n",
            "    \"post_probe_write_ok\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        scale,
        measurements,
        batch_count,
        batch_size,
        passthrough_mean,
        armed_mean,
        overhead_ratio,
        acked,
        limbo,
        refused,
        refusal_mean,
        probe_seconds,
        healthy_after_probe,
        post_probe_write_ok,
    );
    let path = "BENCH_faults.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The chase profiler's overhead: the semi-naive chase of the scaled
/// hospital workload with per-rule profiling **on** (the production
/// default — every served context pays it) vs **off**, best-of-N at each
/// scale point.  Writes `BENCH_obs.json`; CI guards the overall
/// instrumented/uninstrumented ratio at <= 1.03 and re-checks the armed
/// (profile-on) throughput curve for monotone-or-flat scaling.
fn obs_bench(scale: usize) {
    use ontodq_chase::{ChaseConfig, ChaseEngine};

    println!("### Chase profiler overhead — profiling on vs off\n");
    let mut table = MarkdownTable::new([
        "edb tuples",
        "chased tuples",
        "profiled",
        "unprofiled",
        "overhead",
        "tuples/sec (profiled)",
    ]);

    /// Best-of-`runs` wall-clock of `f`, with the last result returned.
    fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (std::time::Duration, T) {
        let mut best = std::time::Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let start = Instant::now();
            let out = f();
            best = best.min(start.elapsed());
            last = Some(out);
        }
        (best, last.expect("runs >= 1"))
    }

    let profiled_engine = ChaseEngine::new(ChaseConfig::default());
    let unprofiled_engine = ChaseEngine::new(ChaseConfig {
        profile: false,
        ..ChaseConfig::default()
    });

    let mut entries: Vec<String> = Vec::new();
    let mut profiled_total = 0.0f64;
    let mut unprofiled_total = 0.0f64;
    let mut armed_curve: Vec<(usize, f64)> = Vec::new();
    for &measurements in &[100usize, 200, 400, 800] {
        let workload = generate(&HospitalScale::with_measurements(measurements * scale));
        let compiled = compile(&workload.ontology);
        let edb = compiled.database.total_tuples();

        let (on_time, on_result) = time_best(5, || {
            profiled_engine.run(&compiled.program, &compiled.database)
        });
        let (off_time, off_result) = time_best(5, || {
            unprofiled_engine.run(&compiled.program, &compiled.database)
        });
        assert_eq!(
            on_result.database.total_tuples(),
            off_result.database.total_tuples(),
            "profiling must not change the chased instance"
        );
        assert!(
            on_result.profile.enabled && !off_result.profile.enabled,
            "the profile flag must round-trip onto the result"
        );

        let ratio = on_time.as_secs_f64() / off_time.as_secs_f64().max(1e-9);
        let tuples_per_sec = on_result.stats.tuples_added as f64 / on_time.as_secs_f64().max(1e-9);
        profiled_total += on_time.as_secs_f64();
        unprofiled_total += off_time.as_secs_f64();
        armed_curve.push((edb, tuples_per_sec));
        table.row([
            edb.to_string(),
            on_result.database.total_tuples().to_string(),
            fmt_duration(on_time),
            fmt_duration(off_time),
            format!("{:.1}%", (ratio - 1.0) * 100.0),
            format!("{tuples_per_sec:.0}"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"edb_tuples\": {},\n",
                "      \"chased_tuples\": {},\n",
                "      \"tuples_added\": {},\n",
                "      \"profiled_seconds\": {:.6},\n",
                "      \"unprofiled_seconds\": {:.6},\n",
                "      \"overhead_ratio\": {:.4},\n",
                "      \"tuples_per_second_profiled\": {:.1}\n",
                "    }}"
            ),
            edb,
            on_result.database.total_tuples(),
            on_result.stats.tuples_added,
            on_time.as_secs_f64(),
            off_time.as_secs_f64(),
            ratio,
            tuples_per_sec,
        ));
    }
    println!("{}", table.render());

    let overall_ratio = profiled_total / unprofiled_total.max(1e-9);
    let (first_edb, first_tps) = armed_curve.first().copied().unwrap_or((0, 0.0));
    let (last_edb, last_tps) = armed_curve.last().copied().unwrap_or((0, 0.0));
    println!(
        "note: per-rule profiling is ON by default in every served context, so its \
         overhead rides every chase; overall instrumented/uninstrumented ratio \
         {overall_ratio:.4} (CI ceiling 1.03), armed throughput {first_tps:.0} tuples/s \
         at {first_edb} EDB tuples -> {last_tps:.0} at {last_edb}\n"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"chase_profiler_overhead\",\n",
            "  \"workload\": \"scaled_hospital\",\n",
            "  \"scale\": {},\n",
            "  \"overhead_ratio\": {:.4},\n",
            "  \"ceiling\": 1.03,\n",
            "  \"scales\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        overall_ratio,
        entries.join(",\n")
    );
    let path = "BENCH_obs.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
