//! `ontodq-lint` — the static-analysis gate, as a standalone binary.
//!
//! Lints Datalog± program files (concrete rule syntax, as accepted by
//! [`ontodq_datalog::parse_program`]) and, with `--fixtures`, the contexts
//! the repository ships (the hospital scenario).  Every diagnostic is
//! printed in the machine-readable `diag …` line format shared with the
//! server's `!check` verb, followed by one `summary` line per target; the
//! process exits nonzero when any target carries error-severity
//! diagnostics — which is what makes it a CI gate.
//!
//! ```text
//! cargo run --release -p ontodq-bench --bin ontodq-lint -- program.dl
//! cargo run --release -p ontodq-bench --bin ontodq-lint -- --fixtures
//! ```

use ontodq_core::{lint_context, scenarios};
use ontodq_datalog::{lint, LintReport};
use ontodq_mdm::fixtures::hospital;

const USAGE: &str = "usage: ontodq-lint [--fixtures] [FILE...]
  FILE        lint a Datalog± program file (concrete rule syntax)
  --fixtures  lint the shipped contexts (hospital scenario)
exits 1 when any target has error-severity diagnostics";

/// Print one target's report; `true` when it carries no errors.
fn report(target: &str, report: &LintReport) -> bool {
    println!("== {target}");
    for diagnostic in &report.diagnostics {
        println!("{}", diagnostic.line());
    }
    println!("summary target={target} {}", report.summary());
    report.error_count() == 0
}

fn run() -> i32 {
    let mut fixtures = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fixtures" => fixtures = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n{USAGE}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }
    if !fixtures && files.is_empty() {
        eprintln!("error: nothing to lint\n{USAGE}");
        return 2;
    }

    let mut clean = true;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return 2;
            }
        };
        let program = match ontodq_datalog::parse_program(&text) {
            Ok(program) => program,
            Err(e) => {
                eprintln!("error: cannot parse {file}: {e}");
                return 2;
            }
        };
        clean &= report(file, &lint(&program));
    }
    if fixtures {
        // The hospital scenario: the paper's running example, linted with
        // full deployment knowledge (EDB relations + quality goals).
        let context = scenarios::hospital_context();
        let instance = hospital::measurements_database();
        clean &= report("fixtures/hospital", &lint_context(&context, &instance));
    }
    if clean {
        0
    } else {
        1
    }
}

fn main() {
    std::process::exit(run());
}
