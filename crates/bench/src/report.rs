//! Small helpers for rendering benchmark/experiment output as markdown
//! tables (consumed by `EXPERIMENTS.md` and the `experiments` binary).

use std::fmt::Write as _;

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Create a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Render a duration in a human-friendly unit.
pub fn fmt_duration(duration: std::time::Duration) -> String {
    let micros = duration.as_micros();
    if micros < 1_000 {
        format!("{micros} µs")
    } else if micros < 1_000_000 {
        format!("{:.1} ms", micros as f64 / 1e3)
    } else {
        format!("{:.2} s", micros as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_markdown() {
        let mut table = MarkdownTable::new(["Time", "Patient", "Value"]);
        table.row(["Sep/5-12:10", "Tom Waits", "38.2"]);
        table.row(["Sep/6-11:50", "Tom Waits", "37.1"]);
        let rendered = table.render();
        assert!(rendered.starts_with("| Time | Patient | Value |"));
        assert!(rendered.contains("|---|---|---|"));
        assert_eq!(rendered.lines().count(), 4);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let table = MarkdownTable::new(["a"]);
        assert!(table.is_empty());
        assert_eq!(table.render().lines().count(), 2);
    }

    #[test]
    fn durations_pick_sensible_units() {
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains("s"));
    }
}
