//! # ontodq-bench
//!
//! Benchmark harness for the `ontodq` reproduction of *"Extending Contexts
//! with Ontologies for Multidimensional Data Quality Assessment"*.
//!
//! The paper's evaluation consists of a running example (Tables I–V,
//! Figures 1–2) and complexity claims.  This crate regenerates all of them:
//!
//! * the `experiments` binary (`cargo run --release -p ontodq-bench --bin
//!   experiments`) prints the reproduced tables and figure summaries as
//!   markdown — the source of `EXPERIMENTS.md`;
//! * the Criterion benches (`cargo bench`) measure the moving parts: quality
//!   assessment (Tables I/II, Fig. 2), dimensional navigation (Tables III–V,
//!   Fig. 1), data-complexity scaling, FO rewriting vs. chase, and the
//!   syntactic class analyses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{fmt_duration, MarkdownTable};

use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, CompiledOntology};

/// The compiled hospital ontology used by several benches.
pub fn compiled_hospital() -> CompiledOntology {
    compile(&hospital::ontology())
}

/// The compiled hospital ontology including the form-(10) discharge rule.
pub fn compiled_hospital_with_discharge() -> CompiledOntology {
    compile(&hospital::ontology_with_discharge_rule())
}

/// The hospital ontology restricted to the upward rule (7) — the fragment on
/// which FO rewriting applies.
pub fn upward_only_hospital() -> ontodq_mdm::MdOntology {
    let mut o = ontodq_mdm::MdOntology::new("hospital-upward");
    o.add_dimension(hospital::hospital_dimension());
    o.add_dimension(hospital::time_dimension());
    for schema in hospital::categorical_schemas() {
        o.add_relation(schema);
    }
    for relation in hospital::ontology().data().relations() {
        for tuple in relation.iter() {
            o.add_tuple(relation.name(), tuple.values().to_vec())
                .unwrap();
        }
    }
    o.add_rule(hospital::patient_unit_rule());
    o
}
