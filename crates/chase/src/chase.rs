//! The chase procedure for Datalog± programs.
//!
//! The chase is the data-completion mechanism of the paper: dimensional rules
//! (TGDs) *generate* data through upward or downward navigation, possibly
//! inventing labeled nulls for unknown non-categorical values (rule (8)) or
//! unknown category members (rule (9)/(10)); dimensional constraints (EGDs
//! and negative constraints) restrict the admissible instances.
//!
//! Two chase variants are provided:
//!
//! * the **restricted** (standard) chase fires a trigger only when the rule
//!   head is not already satisfied by an extension of the trigger — this is
//!   the variant used for query answering and quality-version computation;
//! * the **oblivious** chase fires every trigger exactly once regardless of
//!   satisfaction — useful for analysis and for stress-testing termination
//!   behaviour.
//!
//! Orthogonally to the variant, trigger discovery runs in one of two
//! **evaluation strategies** ([`EvalStrategy`]):
//!
//! * [`EvalStrategy::SemiNaive`] (the default) discovers each round's
//!   triggers by seeding the join from the *delta* of each body atom — the
//!   rows stamped after the rule's previous evaluation watermark (see
//!   [`ontodq_relational::RelationInstance::delta_since`] and
//!   [`crate::eval::evaluate_delta`]).  Work per round is proportional to
//!   the new tuples, not to the whole instance;
//! * [`EvalStrategy::Naive`] re-evaluates every rule body over the full
//!   instance every round — the simple reference oracle the semi-naive
//!   engine is tested against (equivalence modulo labeled-null renaming);
//! * [`EvalStrategy::Parallel`] keeps the delta-driven discovery but fans
//!   the independent per-rule delta-joins of each round out across a scoped
//!   thread team, merging the per-rule trigger batches deterministically in
//!   rule order before the stamp step — same results as the sequential
//!   engine (modulo labeled-null renaming), one join per core.
//!
//! EGDs are enforced by unifying labeled nulls with the values they are
//! equated to; equating two distinct constants is a *hard violation*
//! (inconsistency).  Tuples rewritten by a unification are re-stamped into
//! the delta, so the semi-naive strategy re-examines exactly the rules they
//! can re-trigger.  Negative constraints are checked on the final instance.
//!
//! For long-lived instances that receive update batches, the per-rule
//! watermarks can be carried *across* chase runs: [`ChaseState`] +
//! [`ChaseEngine::resume`] (or the [`chase_incremental`] shorthand) re-chase
//! only the consequences of newly inserted facts instead of starting from
//! scratch — the machinery behind `ontodq-server`'s incrementally maintained
//! snapshots.

use crate::eval::{
    ensure_indexes, evaluate_delta_with, evaluate_with, extend_over_atoms, for_each_trigger,
    has_extension, plan_uses_wco, JoinEngine,
};
use crate::profile::{ChaseProfile, DredTiming};
use crate::provenance::{ChaseStats, ChaseStep, Provenance, SupportGraph, TriggerRecord};
use crate::violation::{EgdViolation, NcViolation, Violations};
use ontodq_datalog::analysis::{magic_transform, DemandProgram};
use ontodq_datalog::{Assignment, Atom, Conjunction, Program, Term, Tgd, Variable};
use ontodq_datalog::{Diagnostic, Severity, TerminationCertificate};
use ontodq_obs::SharedClock;
use ontodq_relational::{Database, NullGenerator, Tuple, Value};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// Which chase variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseMode {
    /// Fire a trigger only if the head is not already satisfied.
    #[default]
    Restricted,
    /// Fire every trigger exactly once, regardless of satisfaction.
    Oblivious,
}

/// How rule-body triggers are discovered each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Delta-driven semi-naive evaluation: joins are seeded from the rows
    /// produced since each rule's previous evaluation.
    #[default]
    SemiNaive,
    /// Full re-evaluation of every rule body every round — the reference
    /// oracle.
    Naive,
    /// Delta-driven evaluation with the independent TGD delta-joins of each
    /// round fanned out across a scoped thread pool
    /// ([`crate::par::parallel_map`]).
    ///
    /// # Determinism guarantee
    ///
    /// All of a round's rule bodies are evaluated against the same immutable
    /// snapshot of the instance, and the per-rule trigger batches are merged
    /// **sequentially in rule order** (each batch in its evaluation order)
    /// before anything is stamped into the next delta.  Fresh labeled nulls
    /// are therefore invented in a schedule-independent order: two runs of
    /// the same program over the same instance produce identical results,
    /// and the final instance equals the sequential strategies' fixpoint
    /// modulo labeled-null renaming (rules see their peers' same-round
    /// output one round later, which shifts derivation rounds but not the
    /// fixpoint).
    Parallel,
}

/// Configuration of a chase run.
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Chase variant.
    pub mode: ChaseMode,
    /// Trigger-discovery strategy.
    pub strategy: EvalStrategy,
    /// Maximum number of rounds (a round applies every TGD to every current
    /// trigger); exceeded runs terminate with
    /// [`TerminationReason::RoundLimit`].
    pub max_rounds: usize,
    /// Maximum number of tuples the chase may add before stopping with
    /// [`TerminationReason::TupleLimit`].
    pub max_new_tuples: usize,
    /// Whether to enforce EGDs.
    pub apply_egds: bool,
    /// Whether to check negative constraints on the final instance.
    pub check_constraints: bool,
    /// Record per-step provenance (disable for large synthetic runs).
    pub record_provenance: bool,
    /// Build hash indexes on every rule body's join positions before the
    /// run (both strategies; they are then maintained incrementally as the
    /// chase inserts, and naive-vs-semi-naive comparisons isolate the
    /// delta-evaluation gain).
    pub build_indexes: bool,
    /// Worker threads for [`EvalStrategy::Parallel`] trigger discovery; `0`
    /// means "one per available CPU".  Ignored by the sequential
    /// strategies.  The effective team size is additionally capped by the
    /// number of TGDs (one delta-join per rule per round).
    pub threads: usize,
    /// Join kernel for rule-body evaluation.  [`JoinEngine::Auto`] (the
    /// default) picks the worst-case-optimal path per rule when its body
    /// has ≥ 3 atoms sharing variables and the hash path otherwise; the
    /// explicit variants force one kernel for A/B comparisons and the
    /// equivalence suites.
    pub join: JoinEngine,
    /// Record the dependency graph ([`SupportGraph`]) while chasing: one
    /// [`TriggerRecord`] per fired trigger, linking grounded body facts to
    /// derived head facts.  Tracking needs the body assignment of every
    /// trigger, so full rules come off the staged batch-firing path — use
    /// only when the graph is actually wanted (DRed diagnostics, provenance
    /// queries).  Support counts are exact under delta-driven discovery
    /// (each trigger is recorded once); the naive strategy re-discovers
    /// triggers every round and over-counts accordingly.
    pub track_support: bool,
    /// Collect a per-rule [`ChaseProfile`] (join time, delta sizes, fires,
    /// kernel choice) while chasing.  On by default — the cost is a few
    /// clock reads per rule per round; `false` skips every measurement
    /// (the `obs_bench` experiment quantifies the difference).
    pub profile: bool,
    /// The program's [`TerminationCertificate`] (from `ontodq-lint`'s
    /// classifier), when the caller ran the analysis.  A certificate that
    /// certifies termination (`terminating == true`, i.e. the TGD set is
    /// weakly acyclic) turns a [`TerminationReason::TupleLimit`] stop into
    /// an **error diagnostic** on the result — the budget firing contradicts
    /// the certificate, so truncation must not pass silently.  An
    /// uncertified certificate attaches a warning diagnostic instead: the
    /// chase may be cut short legitimately.  `None` (the default) attaches
    /// nothing — plain library callers keep the historical behaviour.
    pub certificate: Option<TerminationCertificate>,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        Self {
            mode: ChaseMode::Restricted,
            strategy: EvalStrategy::SemiNaive,
            max_rounds: 1_000,
            max_new_tuples: 1_000_000,
            apply_egds: true,
            check_constraints: true,
            record_provenance: false,
            build_indexes: true,
            threads: 0,
            join: JoinEngine::Auto,
            track_support: false,
            profile: true,
            certificate: None,
        }
    }
}

impl ChaseConfig {
    /// The default configuration with the naive reference strategy.
    pub fn naive() -> Self {
        Self {
            strategy: EvalStrategy::Naive,
            ..Default::default()
        }
    }

    /// The default configuration with the semi-naive strategy (explicit
    /// spelling of the default).
    pub fn semi_naive() -> Self {
        Self {
            strategy: EvalStrategy::SemiNaive,
            ..Default::default()
        }
    }

    /// The default configuration with parallel trigger discovery (one
    /// worker per available CPU).
    pub fn parallel() -> Self {
        Self {
            strategy: EvalStrategy::Parallel,
            ..Default::default()
        }
    }

    /// Parallel trigger discovery with an explicit worker count.
    pub fn parallel_with_threads(threads: usize) -> Self {
        Self {
            strategy: EvalStrategy::Parallel,
            threads,
            ..Default::default()
        }
    }

    /// The default configuration with a forced join kernel (semi-naive
    /// strategy, [`JoinEngine::Hash`] or [`JoinEngine::Leapfrog`] for every
    /// rule body regardless of shape).
    pub fn with_join(join: JoinEngine) -> Self {
        Self {
            join,
            ..Default::default()
        }
    }
}

/// Why the chase stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// No rule application changed the instance: a fixpoint (universal model
    /// up to the enforced constraints) was reached.
    Fixpoint,
    /// The round budget was exhausted.
    RoundLimit,
    /// The new-tuple budget was exhausted.
    TupleLimit,
}

/// The outcome of a chase run.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The chased database (the input instance plus all generated tuples,
    /// with EGD unifications applied).
    pub database: Database,
    /// Aggregate statistics.
    pub stats: ChaseStats,
    /// EGD and negative-constraint violations observed.
    pub violations: Violations,
    /// Per-step provenance (empty unless enabled in the config).
    pub provenance: Provenance,
    /// Why the run stopped.
    pub termination: TerminationReason,
    /// Per-rule profile (join time, delta sizes, kernel choice); disabled
    /// and empty unless [`ChaseConfig::profile`] is on.  Kept out of
    /// [`ChaseStats`] so stats stay timing-free and comparable across
    /// strategies.
    pub profile: ChaseProfile,
    /// Diagnostics attached by the engine itself — today, the termination
    /// certificate cross-check: a warning when the run was configured with
    /// an uncertified [`TerminationCertificate`], an **error** when a
    /// certified-terminating program nonetheless stopped on
    /// [`TerminationReason::TupleLimit`] (an invariant violation: either the
    /// certificate or the chase is wrong).  Empty when
    /// [`ChaseConfig::certificate`] is `None`.
    pub diagnostics: Vec<Diagnostic>,
}

impl ChaseResult {
    /// `true` when the chase reached a fixpoint without observing any
    /// violation — i.e. the instance is a model of the program.
    pub fn is_consistent_model(&self) -> bool {
        self.termination == TerminationReason::Fixpoint && self.violations.is_empty()
    }
}

/// Statistics of one [`ChaseEngine::retract`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetractStats {
    /// Facts the caller asked to delete.
    pub requested: usize,
    /// Requested facts that were actually present and got tombstoned.
    pub retracted: usize,
    /// Additional facts tombstoned by the over-approximated consequence
    /// cascade (the DRed delete phase).
    pub cascaded: usize,
    /// Tuples re-inserted by the re-derivation chase (survivors with
    /// alternative supports, plus their downstream consequences).
    pub rederived: usize,
}

impl fmt::Display for RetractStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested={}, retracted={}, cascaded={}, rederived={}",
            self.requested, self.retracted, self.cascaded, self.rederived
        )
    }
}

/// The outcome of a [`ChaseEngine::retract`] batch: the deletion statistics
/// plus the [`ChaseResult`] of the re-derivation chase (whose database is
/// the maintained instance).
#[derive(Debug, Clone)]
pub struct RetractResult {
    /// Deletion statistics.
    pub stats: RetractStats,
    /// The re-derivation chase's result (statistics, violations, and a
    /// snapshot of the maintained instance).
    pub chase: ChaseResult,
}

/// Do any of `program`'s EGDs read one of `relations` in their body?
///
/// DRed cannot unwind the null-to-constant unifications an EGD may have
/// burned into the instance — a substitution justified by a deleted fact is
/// not recoverable from tombstones alone.  Callers maintaining an instance
/// under EGDs check this before [`ChaseEngine::retract`] and fall back to a
/// full re-chase of the surviving base when it returns `true`.
pub fn egds_read_relations<'a, I>(program: &Program, relations: I) -> bool
where
    I: IntoIterator<Item = &'a str> + Clone,
{
    program.egds.iter().any(|egd| {
        egd.body
            .atoms
            .iter()
            .chain(egd.body.negated.iter())
            .any(|atom| relations.clone().into_iter().any(|r| r == atom.predicate))
    })
}

/// Persistent chase state for **incremental re-chasing**.
///
/// A `ChaseState` owns the working instance together with the per-rule
/// epoch watermarks ("floors") of the delta-driven semi-naive strategy and
/// the next fresh labeled-null id.  It is the resumable counterpart of
/// [`ChaseEngine::run`]: after an initial [`ChaseEngine::resume`] has chased
/// the state to a fixpoint, new extensional facts can be appended with
/// [`ChaseState::insert_batch`] and a further `resume` call performs an
/// **incremental re-chase** — trigger discovery is seeded from the rows
/// stamped after each rule's stored watermark, so work is proportional to
/// the update batch and its consequences, not to the whole instance.
///
/// ```
/// use ontodq_chase::{chase, chase_incremental, ChaseState};
/// use ontodq_datalog::parse_program;
/// use ontodq_relational::{Database, Tuple};
///
/// let program = parse_program(
///     "T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), E(y, z).\n",
/// ).unwrap();
/// let mut db = Database::new();
/// db.insert_values("E", ["a", "b"]).unwrap();
///
/// // Initial chase, keeping the resumable state.
/// let mut state = ChaseState::new(&program, &db);
/// chase_incremental(&program, &mut state);
///
/// // A later update batch: only the new tuples are re-joined.
/// state.insert_batch([("E".to_string(), Tuple::from_iter(["b", "c"]))]);
/// let incremental = chase_incremental(&program, &mut state);
///
/// // The incremental result equals a from-scratch chase of all facts.
/// db.insert_values("E", ["b", "c"]).unwrap();
/// let scratch = chase(&program, &db);
/// assert_eq!(
///     incremental.database.relation("T").unwrap().len(),
///     scratch.database.relation("T").unwrap().len(),
/// );
/// ```
///
/// The state is tied to the program it was chased with: rules are identified
/// by index, so resuming with a *different* program is only meaningful when
/// the original rules keep their positions (appending new rules is fine —
/// their floors start at `None`, i.e. a full first evaluation).
///
/// `resume` always uses delta-driven trigger discovery under the
/// **restricted** chase — sequentially by default, fanned out per rule when
/// the engine is configured with [`EvalStrategy::Parallel`]; the `mode`
/// configuration field is ignored by the resumable path.
#[derive(Debug, Clone)]
pub struct ChaseState {
    database: Database,
    tgd_floor: Vec<Option<u64>>,
    egd_floor: Vec<Option<u64>>,
    next_null: u64,
}

impl ChaseState {
    /// Seed a resumable state from `database` (cloned) for `program`: the
    /// program's facts are loaded, every predicate the program mentions is
    /// registered, and all rule watermarks start at `None` (never
    /// evaluated), so the first [`ChaseEngine::resume`] performs a full
    /// chase.
    pub fn new(program: &Program, database: &Database) -> Self {
        let mut db = database.clone();
        program.facts_into_database(&mut db);
        for (predicate, arity) in program.predicates() {
            db.relation_or_create(&predicate, arity);
        }
        let next_null = db.max_null_id().map(|n| n + 1).unwrap_or(0);
        Self {
            database: db,
            tgd_floor: vec![None; program.tgds.len()],
            egd_floor: vec![None; program.egds.len()],
            next_null,
        }
    }

    /// The current working instance (extensional facts plus everything the
    /// chase derived so far).
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The current epoch of the working instance.
    pub fn epoch(&self) -> u64 {
        self.database.epoch()
    }

    /// Append a batch of extensional facts, stamping them **after** every
    /// stored rule watermark so the next [`ChaseEngine::resume`] discovers
    /// exactly the triggers they enable.  Returns the number of genuinely
    /// new tuples (duplicates are ignored).
    ///
    /// # Errors
    /// Fails when a fact conflicts with its relation's schema (arity or
    /// attribute types) or when two facts disagree on a new relation's
    /// arity.  The whole batch is validated up front, so on error **nothing
    /// is applied** — a long-lived state is never left half-updated.
    pub fn insert_batch<I>(&mut self, facts: I) -> ontodq_relational::Result<usize>
    where
        I: IntoIterator<Item = (String, Tuple)>,
    {
        let facts: Vec<(String, Tuple)> = facts.into_iter().collect();
        let mut fresh_arities: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for (predicate, tuple) in &facts {
            match self.database.relation(predicate) {
                Ok(relation) => relation.schema().validate(tuple)?,
                Err(_) => {
                    let arity = *fresh_arities.entry(predicate).or_insert(tuple.arity());
                    if arity != tuple.arity() {
                        return Err(ontodq_relational::RelationalError::ArityMismatch {
                            relation: predicate.clone(),
                            expected: arity,
                            actual: tuple.arity(),
                        });
                    }
                }
            }
        }
        // One epoch tick per batch: EGD floors may sit exactly at the
        // current epoch (their drain path does not advance it), and
        // `delta_since` is strict, so rows stamped at the current epoch
        // would be invisible to those rules.
        self.database.advance_epoch();
        let mut added = 0;
        for (predicate, tuple) in facts {
            if self
                .database
                .insert(&predicate, tuple)
                .expect("batch was validated before application")
            {
                added += 1;
            }
        }
        Ok(added)
    }

    /// The per-TGD evaluation watermarks, indexed like `program.tgds`
    /// (`None` = never evaluated).  Exposed — together with
    /// [`ChaseState::egd_floors`], [`ChaseState::next_null`] and
    /// [`ChaseState::database`] — so persistence layers (`ontodq-store`) can
    /// serialize a resumable state and restore it with
    /// [`ChaseState::from_parts`]; a restart then replays only the WAL tail
    /// through [`ChaseEngine::resume`] instead of re-chasing from scratch.
    pub fn tgd_floors(&self) -> &[Option<u64>] {
        &self.tgd_floor
    }

    /// The per-EGD evaluation watermarks, indexed like `program.egds`.
    pub fn egd_floors(&self) -> &[Option<u64>] {
        &self.egd_floor
    }

    /// The id the next freshly invented labeled null will get.
    pub fn next_null(&self) -> u64 {
        self.next_null
    }

    /// Reassemble a state from persisted parts — the inverse of reading
    /// [`ChaseState::database`] / [`ChaseState::tgd_floors`] /
    /// [`ChaseState::egd_floors`] / [`ChaseState::next_null`].
    ///
    /// The caller owes the same contract a live state maintains: the
    /// watermark vectors are positional, so the state is only meaningful for
    /// a program whose rules sit at the positions they had when the parts
    /// were captured (recompiling the same context deterministically, as
    /// recovery does, satisfies this).  The null counter is additionally
    /// clamped above every null occurring in `database`, so fresh nulls can
    /// never collide even with a stale persisted counter.
    pub fn from_parts(
        database: Database,
        tgd_floor: Vec<Option<u64>>,
        egd_floor: Vec<Option<u64>>,
        next_null: u64,
    ) -> Self {
        let floor = database.max_null_id().map(|n| n + 1).unwrap_or(0);
        Self {
            database,
            tgd_floor,
            egd_floor,
            next_null: next_null.max(floor),
        }
    }

    /// Re-align the state with `program` before a resume: load any new
    /// program facts, register new predicates, and extend the watermark
    /// vectors so appended rules get a full first evaluation.
    fn sync_with(&mut self, program: &Program) {
        if program.facts_into_database(&mut self.database) > 0 {
            // Fresh program facts must land in every rule's delta; they were
            // stamped at the current epoch, which may equal an EGD floor.
            self.database.advance_epoch();
        }
        for (predicate, arity) in program.predicates() {
            self.database.relation_or_create(&predicate, arity);
        }
        self.tgd_floor.resize(program.tgds.len(), None);
        self.egd_floor.resize(program.egds.len(), None);
        let floor = self.database.max_null_id().map(|n| n + 1).unwrap_or(0);
        self.next_null = self.next_null.max(floor);
    }
}

/// One rule's discovered triggers for a round, in evaluation order.
///
/// Full TGDs under the restricted chase take the **staged** form: their
/// heads are grounded straight off the join's binder stack into a flat
/// value buffer (`sum(head arities)` values per trigger), ready for the
/// arena's slice-insert path — no per-trigger `Assignment`, `Tuple` or
/// `Vec` is ever built.  Everything else (existential heads, the oblivious
/// chase's dedup) still needs the assignments themselves.
enum TriggerBatch {
    Staged(Vec<Value>),
    Assignments(Vec<Assignment>),
}

/// Ground the head of a **full** TGD for every (delta-)trigger of its
/// body, appending the head rows to a flat value buffer in trigger order.
///
/// Bindings are read in place from the join's binder stack
/// ([`crate::eval::for_each_trigger`]); a full TGD's head variables are all
/// frontier variables, so every term resolves without inventing nulls.
fn stage_full_tgd_triggers(
    db: &Database,
    tgd: &Tgd,
    floor: Option<u64>,
    join: JoinEngine,
) -> Vec<Value> {
    let mut staged = Vec::new();
    for_each_trigger(db, &tgd.body, floor, join, &mut |binder| {
        for atom in &tgd.head {
            for term in &atom.terms {
                staged.push(match term {
                    Term::Const(v) => *v,
                    Term::Var(v) => binder
                        .get(v)
                        .expect("full TGD head variables are bound by the body"),
                });
            }
        }
        false
    });
    staged
}

/// A rule's display label for profiles: its declared label, or
/// `tgd<i> -> <head predicates>` when unlabeled.
fn rule_label(index: usize, tgd: &Tgd) -> String {
    match &tgd.label {
        Some(label) => label.clone(),
        None => format!("tgd{index}->{}", tgd.head_predicates().join(",")),
    }
}

/// Mutable chase-run state shared between the strategies.
struct RunState {
    nulls: NullGenerator,
    stats: ChaseStats,
    violations: Violations,
    provenance: Provenance,
    /// Oblivious-mode dedup of fired triggers.
    fired: HashSet<(usize, Vec<(Variable, Value)>)>,
    /// Per-rule measurements (disabled unless [`ChaseConfig::profile`]).
    profile: ChaseProfile,
}

/// The chase engine.
#[derive(Debug, Clone)]
pub struct ChaseEngine {
    config: ChaseConfig,
    /// Time source for the profiler (monotonic unless a caller injected a
    /// virtual clock for deterministic replay).
    clock: SharedClock,
}

impl Default for ChaseEngine {
    fn default() -> Self {
        Self::new(ChaseConfig::default())
    }
}

impl ChaseEngine {
    /// An engine with the given configuration (and the production
    /// monotonic clock).
    pub fn new(config: ChaseConfig) -> Self {
        Self {
            config,
            clock: ontodq_obs::monotonic(),
        }
    }

    /// An engine with default configuration (restricted semi-naive chase,
    /// generous budgets, EGDs and constraints enforced).
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// Replace the profiler's time source (see [`ontodq_obs::Clock`]) —
    /// deterministic tests inject a frozen [`ontodq_obs::VirtualClock`].
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// The engine's clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ChaseConfig {
        &self.config
    }

    /// A fresh per-rule profile honoring [`ChaseConfig::profile`].
    fn fresh_profile(&self, program: &Program) -> ChaseProfile {
        if !self.config.profile {
            return ChaseProfile::disabled();
        }
        ChaseProfile::for_rules(
            program
                .tgds
                .iter()
                .enumerate()
                .map(|(index, tgd)| rule_label(index, tgd))
                .collect(),
        )
    }

    /// Clock read gated on profiling (0 when off, so the disabled path
    /// never touches the clock).
    fn profile_now(&self) -> u64 {
        if self.config.profile {
            self.clock.now_micros()
        } else {
            0
        }
    }

    /// Record one trigger-discovery evaluation of `tgd` into the profile.
    fn note_eval(
        &self,
        profile: &mut ChaseProfile,
        tgd_index: usize,
        tgd: &Tgd,
        micros: u64,
        delta_rows: u64,
    ) {
        if !profile.enabled {
            return;
        }
        let rule = &mut profile.rules[tgd_index];
        rule.evaluations += 1;
        rule.delta_rows += delta_rows;
        rule.join_micros += micros;
        if plan_uses_wco(&tgd.body, self.config.join) {
            rule.wco_evals += 1;
        } else {
            rule.hash_evals += 1;
        }
    }

    /// Attribute the firing outcome of one rule's batch to its profile by
    /// diffing the global stats across the batch.
    fn note_outcome(
        profile: &mut ChaseProfile,
        tgd_index: usize,
        stats: &ChaseStats,
        fired_before: usize,
        satisfied_before: usize,
        added_before: usize,
    ) {
        if !profile.enabled {
            return;
        }
        let rule = &mut profile.rules[tgd_index];
        rule.fires += (stats.triggers_fired - fired_before) as u64;
        rule.satisfied += (stats.triggers_satisfied - satisfied_before) as u64;
        rule.tuples_added += (stats.tuples_added - added_before) as u64;
    }

    /// A fresh provenance log honoring the engine's recording flags.
    fn fresh_provenance(&self) -> Provenance {
        let mut provenance = if self.config.record_provenance {
            Provenance::recording()
        } else {
            Provenance::disabled()
        };
        if self.config.track_support {
            provenance.support = SupportGraph::tracking();
        }
        provenance
    }

    /// The certificate cross-check diagnostics for a run that stopped with
    /// `termination` (see [`ChaseConfig::certificate`]), also folding the
    /// certificate and diagnostic counts into `profile`.
    fn certificate_diagnostics(
        &self,
        termination: TerminationReason,
        profile: &mut ChaseProfile,
    ) -> Vec<Diagnostic> {
        let Some(certificate) = &self.config.certificate else {
            return Vec::new();
        };
        if profile.certificate.is_none() {
            profile.certificate = Some(certificate.clone());
        }
        let mut diagnostics = Vec::new();
        if certificate.terminating {
            if termination == TerminationReason::TupleLimit {
                diagnostics.push(
                    Diagnostic::new(
                        "C001",
                        Severity::Error,
                        format!(
                            "invariant violation: program certified terminating ({certificate}) \
                             but the chase stopped on the tuple budget \
                             (max_new_tuples={}); the result is truncated",
                            self.config.max_new_tuples
                        ),
                    )
                    .witnessed(certificate.report.to_string()),
                );
            }
        } else {
            let mut diag = Diagnostic::new(
                "C002",
                Severity::Warn,
                format!(
                    "chase ran without a termination certificate ({certificate}); \
                     budget limits (max_rounds={}, max_new_tuples={}) may truncate the result",
                    self.config.max_rounds, self.config.max_new_tuples
                ),
            );
            if !certificate.witness_cycle.is_empty() {
                diag = diag.witnessed(certificate.rendered_cycle());
            }
            diagnostics.push(diag);
        }
        for diagnostic in &diagnostics {
            match diagnostic.severity {
                Severity::Error => profile.lint_errors += 1,
                Severity::Warn => profile.lint_warnings += 1,
                Severity::Info => {}
            }
        }
        diagnostics
    }

    /// Run the chase of `program` over `database` (which is not modified; the
    /// result carries the chased copy).
    pub fn run(&self, program: &Program, database: &Database) -> ChaseResult {
        let mut db = database.clone();
        program.facts_into_database(&mut db);
        // Make sure every predicate mentioned by the program exists, so that
        // evaluation of unknown-but-declared predicates is consistent.
        for (predicate, arity) in program.predicates() {
            db.relation_or_create(&predicate, arity);
        }

        let mut state = RunState {
            nulls: NullGenerator::starting_at(db.max_null_id().map(|n| n + 1).unwrap_or(0)),
            stats: ChaseStats::default(),
            violations: Violations::default(),
            provenance: self.fresh_provenance(),
            fired: HashSet::new(),
            profile: self.fresh_profile(program),
        };

        let run_start = self.profile_now();
        let termination = match self.config.strategy {
            EvalStrategy::Naive => self.run_naive(program, &mut db, &mut state),
            EvalStrategy::SemiNaive => self.run_seminaive(program, &mut db, &mut state),
            EvalStrategy::Parallel => self.run_parallel(program, &mut db, &mut state),
        };
        if self.config.profile {
            state.profile.total_micros = self.profile_now().saturating_sub(run_start);
        }

        // Negative constraints on the final instance.
        if self.config.check_constraints {
            for (index, nc) in program.constraints.iter().enumerate() {
                for witness in evaluate_with(&db, &nc.body, self.config.join) {
                    state.stats.nc_violations += 1;
                    state.violations.nc.push(NcViolation {
                        constraint_index: index,
                        label: nc.label.clone(),
                        witness,
                    });
                }
            }
        }

        let diagnostics = self.certificate_diagnostics(termination, &mut state.profile);
        ChaseResult {
            database: db,
            stats: state.stats,
            violations: state.violations,
            provenance: state.provenance,
            termination,
            profile: state.profile,
            diagnostics,
        }
    }

    /// Resume the chase of `program` over a persistent [`ChaseState`].
    ///
    /// The first call on a fresh state performs a full (delta-driven
    /// semi-naive, restricted) chase; subsequent calls after
    /// [`ChaseState::insert_batch`] perform an **incremental re-chase**:
    /// every rule's trigger discovery is seeded from the rows stamped after
    /// its stored watermark, so only consequences of the new facts are
    /// recomputed.  The state's watermarks, null counter and working
    /// instance are updated in place; the returned [`ChaseResult`] carries a
    /// snapshot (clone) of the chased instance plus the statistics and
    /// violations of *this* resume step (negative constraints are re-checked
    /// on the full final instance every time).
    ///
    /// The incremental result is a universal model of the program over the
    /// accumulated facts, so certain query answers agree with a from-scratch
    /// chase of the same fact set (the instances themselves may differ by
    /// labeled nulls a from-scratch restricted chase would not invent).
    pub fn resume(&self, program: &Program, state: &mut ChaseState) -> ChaseResult {
        state.sync_with(program);
        let mut run = RunState {
            nulls: NullGenerator::starting_at(state.next_null),
            stats: ChaseStats::default(),
            violations: Violations::default(),
            provenance: self.fresh_provenance(),
            fired: HashSet::new(),
            profile: self.fresh_profile(program),
        };

        let run_start = self.profile_now();
        let termination = if self.config.strategy == EvalStrategy::Parallel {
            self.run_parallel_with_floors(
                program,
                &mut state.database,
                &mut run,
                &mut state.tgd_floor,
                &mut state.egd_floor,
            )
        } else {
            self.run_seminaive_with_floors(
                program,
                &mut state.database,
                &mut run,
                &mut state.tgd_floor,
                &mut state.egd_floor,
            )
        };
        if self.config.profile {
            run.profile.total_micros = self.profile_now().saturating_sub(run_start);
        }
        state.next_null = run.nulls.peek();

        if self.config.check_constraints {
            for (index, nc) in program.constraints.iter().enumerate() {
                for witness in evaluate_with(&state.database, &nc.body, self.config.join) {
                    run.stats.nc_violations += 1;
                    run.violations.nc.push(NcViolation {
                        constraint_index: index,
                        label: nc.label.clone(),
                        witness,
                    });
                }
            }
        }

        let diagnostics = self.certificate_diagnostics(termination, &mut run.profile);
        ChaseResult {
            database: state.database.clone(),
            stats: run.stats,
            violations: run.violations,
            provenance: run.provenance,
            termination,
            profile: run.profile,
            diagnostics,
        }
    }

    // ------------------------------------------------------------------
    // Naive strategy: the reference oracle.
    // ------------------------------------------------------------------

    fn run_naive(
        &self,
        program: &Program,
        db: &mut Database,
        state: &mut RunState,
    ) -> TerminationReason {
        // Both strategies honor `build_indexes`, so naive-vs-semi-naive
        // comparisons isolate the delta-evaluation gain rather than
        // conflating it with hash-index vs full-scan joins.
        if self.config.build_indexes {
            self.build_rule_indexes(program, db);
        }
        let mut termination = TerminationReason::Fixpoint;
        'rounds: for round in 1..=self.config.max_rounds {
            state.stats.rounds = round;
            let mut changed = false;

            // TGD application over the full instance.
            for (tgd_index, tgd) in program.tgds.iter().enumerate() {
                let eval_start = self.profile_now();
                let fired_before = state.stats.triggers_fired;
                let satisfied_before = state.stats.triggers_satisfied;
                let added_before = state.stats.tuples_added;
                let triggers = evaluate_with(db, &tgd.body, self.config.join);
                if self.config.profile {
                    self.note_eval(
                        &mut state.profile,
                        tgd_index,
                        tgd,
                        self.profile_now().saturating_sub(eval_start),
                        triggers.len() as u64,
                    );
                }
                let mut limited = false;
                for assignment in triggers {
                    if state.stats.tuples_added >= self.config.max_new_tuples {
                        termination = TerminationReason::TupleLimit;
                        limited = true;
                        break;
                    }
                    changed |= self.fire_trigger(tgd_index, tgd, &assignment, db, state, round);
                }
                Self::note_outcome(
                    &mut state.profile,
                    tgd_index,
                    &state.stats,
                    fired_before,
                    satisfied_before,
                    added_before,
                );
                if limited {
                    break 'rounds;
                }
            }

            // EGD enforcement (to local fixpoint within the round).
            if self.config.apply_egds {
                let egd_start = self.profile_now();
                let egd_changed = self.apply_egds_naive(program, db, state);
                if self.config.profile {
                    state.profile.egd_micros += self.profile_now().saturating_sub(egd_start);
                }
                changed = changed || egd_changed;
            }

            if !changed {
                termination = TerminationReason::Fixpoint;
                break;
            }
            if round == self.config.max_rounds {
                termination = TerminationReason::RoundLimit;
            }
        }
        termination
    }

    /// Enforce the program's EGDs on `db` by full re-evaluation until no
    /// further change; returns whether anything changed.
    fn apply_egds_naive(&self, program: &Program, db: &mut Database, state: &mut RunState) -> bool {
        let mut changed_any = false;
        loop {
            let mut changed = false;
            for (egd_index, egd) in program.egds.iter().enumerate() {
                let assignments = evaluate_with(db, &egd.body, self.config.join);
                for assignment in assignments {
                    if self.enforce_equality(egd_index, program, &assignment, db, state) {
                        changed = true;
                        // The substitution invalidated the remaining
                        // assignments for this EGD; re-evaluate.
                        break;
                    }
                }
                if changed {
                    break;
                }
            }
            changed_any = changed_any || changed;
            if !changed {
                break;
            }
        }
        changed_any
    }

    // ------------------------------------------------------------------
    // Semi-naive strategy: delta-driven trigger discovery.
    // ------------------------------------------------------------------

    /// Build hash indexes on the join positions of every rule body; they
    /// are maintained incrementally by `ontodq-relational` from then on.
    ///
    /// Existential TGDs additionally get an index on one *frontier*
    /// position of each head atom: the restricted chase probes the head
    /// relation once per trigger (`has_extension`), and without an index
    /// that probe is a scan of a relation that grows with every fired
    /// trigger — a quadratic term that dominated large instances.
    fn build_rule_indexes(&self, program: &Program, db: &mut Database) {
        for tgd in &program.tgds {
            ensure_indexes(db, &tgd.body);
            if !tgd.is_full() {
                let frontier = tgd.frontier();
                for atom in &tgd.head {
                    let positions: Vec<usize> = atom
                        .terms
                        .iter()
                        .enumerate()
                        .filter(|(_, term)| match term {
                            ontodq_datalog::Term::Const(_) => true,
                            ontodq_datalog::Term::Var(v) => frontier.contains(v),
                        })
                        .map(|(position, _)| position)
                        .collect();
                    if let Ok(relation) = db.relation_mut(&atom.predicate) {
                        for position in positions {
                            if position < relation.schema().arity() && !relation.has_index(position)
                            {
                                relation.build_index(position);
                            }
                        }
                    }
                }
            }
        }
        for egd in &program.egds {
            ensure_indexes(db, &egd.body);
        }
        for nc in &program.constraints {
            ensure_indexes(db, &nc.body);
        }
    }

    fn run_seminaive(
        &self,
        program: &Program,
        db: &mut Database,
        state: &mut RunState,
    ) -> TerminationReason {
        // Per-rule evaluation watermarks: a rule's next evaluation only
        // joins through rows stamped after its previous one.  `None` means
        // "never evaluated" → full join (the seeding round).
        let mut tgd_floor: Vec<Option<u64>> = vec![None; program.tgds.len()];
        let mut egd_floor: Vec<Option<u64>> = vec![None; program.egds.len()];
        self.run_seminaive_with_floors(program, db, state, &mut tgd_floor, &mut egd_floor)
    }

    /// The semi-naive driver, parameterized over externally-held watermark
    /// floors so a [`ChaseState`] can carry them across [`ChaseEngine::resume`]
    /// calls.
    fn run_seminaive_with_floors(
        &self,
        program: &Program,
        db: &mut Database,
        state: &mut RunState,
        tgd_floor: &mut [Option<u64>],
        egd_floor: &mut [Option<u64>],
    ) -> TerminationReason {
        if self.config.build_indexes {
            self.build_rule_indexes(program, db);
        }

        let mut termination = TerminationReason::Fixpoint;
        'rounds: for round in 1..=self.config.max_rounds {
            state.stats.rounds = round;
            let mut changed = false;

            for (tgd_index, tgd) in program.tgds.iter().enumerate() {
                // Everything stamped up to `watermark` is visible to this
                // evaluation; the rule's own inserts land strictly after it
                // (epoch advanced below), so they form the next delta.
                let watermark = db.epoch();
                let floor = tgd_floor[tgd_index];
                let eval_start = self.profile_now();
                let fired_before = state.stats.triggers_fired;
                let satisfied_before = state.stats.triggers_satisfied;
                let added_before = state.stats.tuples_added;
                if self.batchable(tgd) {
                    let staged = stage_full_tgd_triggers(db, tgd, floor, self.config.join);
                    if self.config.profile {
                        let chunk: usize = tgd.head.iter().map(|a| a.arity()).sum();
                        self.note_eval(
                            &mut state.profile,
                            tgd_index,
                            tgd,
                            self.profile_now().saturating_sub(eval_start),
                            (staged.len() / chunk.max(1)) as u64,
                        );
                    }
                    db.advance_epoch();
                    let (batch_changed, limited) =
                        self.apply_staged_triggers(tgd_index, tgd, &staged, db, state, round);
                    changed |= batch_changed;
                    Self::note_outcome(
                        &mut state.profile,
                        tgd_index,
                        &state.stats,
                        fired_before,
                        satisfied_before,
                        added_before,
                    );
                    if limited {
                        // Leave the floor untouched: the unfired remainder
                        // of this rule's triggers must be re-discoverable
                        // if the run is resumed from its [`ChaseState`].
                        termination = TerminationReason::TupleLimit;
                        break 'rounds;
                    }
                } else {
                    let triggers = match floor {
                        None => evaluate_with(db, &tgd.body, self.config.join),
                        Some(floor) => evaluate_delta_with(db, &tgd.body, floor, self.config.join),
                    };
                    if self.config.profile {
                        self.note_eval(
                            &mut state.profile,
                            tgd_index,
                            tgd,
                            self.profile_now().saturating_sub(eval_start),
                            triggers.len() as u64,
                        );
                    }
                    db.advance_epoch();
                    let mut limited = false;
                    for assignment in triggers {
                        if state.stats.tuples_added >= self.config.max_new_tuples {
                            // Leave the floor untouched, as above.
                            termination = TerminationReason::TupleLimit;
                            limited = true;
                            break;
                        }
                        changed |= self.fire_trigger(tgd_index, tgd, &assignment, db, state, round);
                    }
                    Self::note_outcome(
                        &mut state.profile,
                        tgd_index,
                        &state.stats,
                        fired_before,
                        satisfied_before,
                        added_before,
                    );
                    if limited {
                        break 'rounds;
                    }
                }
                // Only after every discovered trigger has been processed is
                // the delta up to `watermark` really consumed.
                tgd_floor[tgd_index] = Some(watermark);
            }

            if self.config.apply_egds {
                let egd_start = self.profile_now();
                let egd_changed = self.apply_egds_seminaive(program, db, state, egd_floor);
                if self.config.profile {
                    state.profile.egd_micros += self.profile_now().saturating_sub(egd_start);
                }
                changed = changed || egd_changed;
            }

            if !changed {
                termination = TerminationReason::Fixpoint;
                break;
            }
            if round == self.config.max_rounds {
                termination = TerminationReason::RoundLimit;
            }
        }
        termination
    }

    // ------------------------------------------------------------------
    // Parallel strategy: per-rule delta-joins fanned out per round.
    // ------------------------------------------------------------------

    /// The worker-team size for parallel trigger discovery: the configured
    /// thread count (or the CPU count when 0), capped by the number of
    /// rules — a round never has more independent joins than TGDs.
    fn effective_threads(&self, rules: usize) -> usize {
        let configured = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        configured.min(rules.max(1))
    }

    fn run_parallel(
        &self,
        program: &Program,
        db: &mut Database,
        state: &mut RunState,
    ) -> TerminationReason {
        let mut tgd_floor: Vec<Option<u64>> = vec![None; program.tgds.len()];
        let mut egd_floor: Vec<Option<u64>> = vec![None; program.egds.len()];
        self.run_parallel_with_floors(program, db, state, &mut tgd_floor, &mut egd_floor)
    }

    /// The parallel driver — see [`EvalStrategy::Parallel`] for the
    /// determinism guarantee.
    ///
    /// Each round:
    /// 1. every TGD's delta-join is evaluated against the same immutable
    ///    snapshot of the instance, fanned out across a scoped thread team
    ///    ([`crate::par::parallel_map`]) — trigger discovery is read-only,
    ///    so the workers share `&Database` freely;
    /// 2. the per-rule trigger batches are merged sequentially in rule
    ///    order (restricted-mode satisfaction checks and null invention
    ///    happen here, against the live instance), then the epoch advances
    ///    so the merged inserts form the next round's delta;
    /// 3. EGDs are enforced exactly as in the sequential semi-naive driver
    ///    (substitutions mutate the instance, so they stay sequential).
    fn run_parallel_with_floors(
        &self,
        program: &Program,
        db: &mut Database,
        state: &mut RunState,
        tgd_floor: &mut [Option<u64>],
        egd_floor: &mut [Option<u64>],
    ) -> TerminationReason {
        if self.config.build_indexes {
            self.build_rule_indexes(program, db);
        }
        let threads = self.effective_threads(program.tgds.len());

        let mut termination = TerminationReason::Fixpoint;
        'rounds: for round in 1..=self.config.max_rounds {
            state.stats.rounds = round;
            let mut changed = false;

            // Everything stamped up to `watermark` is visible to this
            // round's joins; the merged inserts land strictly after it.
            let watermark = db.epoch();
            let floors: Vec<Option<u64>> = tgd_floor.to_vec();
            let join = self.config.join;
            let snapshot: &Database = db;
            let profiling = self.config.profile;
            // Each worker measures its own rule's join on the shared clock
            // and ships `(batch, join_micros, delta_rows)` back for the
            // sequential merge to attribute.
            let batches = crate::par::parallel_map(threads, &program.tgds, |index, tgd| {
                let eval_start = if profiling {
                    self.clock.now_micros()
                } else {
                    0
                };
                let (batch, delta_rows) = if self.batchable(tgd) {
                    let staged = stage_full_tgd_triggers(snapshot, tgd, floors[index], join);
                    let chunk: usize = tgd.head.iter().map(|a| a.arity()).sum();
                    let rows = (staged.len() / chunk.max(1)) as u64;
                    (TriggerBatch::Staged(staged), rows)
                } else {
                    let triggers = match floors[index] {
                        None => evaluate_with(snapshot, &tgd.body, join),
                        Some(floor) => evaluate_delta_with(snapshot, &tgd.body, floor, join),
                    };
                    let rows = triggers.len() as u64;
                    (TriggerBatch::Assignments(triggers), rows)
                };
                let micros = if profiling {
                    self.clock.now_micros().saturating_sub(eval_start)
                } else {
                    0
                };
                (batch, micros, delta_rows)
            });
            db.advance_epoch();

            // Deterministic merge: rule order, then each batch in its
            // evaluation order.  A rule's floor advances only once its
            // whole batch is merged — a `TupleLimit` break mid-merge must
            // not mark the dropped triggers of this (or any later) rule as
            // consumed, or a subsequent [`ChaseState`] resume would
            // silently lose them.
            for (tgd_index, (batch, join_micros, delta_rows)) in batches.into_iter().enumerate() {
                let tgd = &program.tgds[tgd_index];
                if profiling {
                    self.note_eval(&mut state.profile, tgd_index, tgd, join_micros, delta_rows);
                }
                let fired_before = state.stats.triggers_fired;
                let satisfied_before = state.stats.triggers_satisfied;
                let added_before = state.stats.tuples_added;
                let mut limited = false;
                match batch {
                    TriggerBatch::Staged(staged) => {
                        let (batch_changed, batch_limited) =
                            self.apply_staged_triggers(tgd_index, tgd, &staged, db, state, round);
                        changed |= batch_changed;
                        if batch_limited {
                            termination = TerminationReason::TupleLimit;
                            limited = true;
                        }
                    }
                    TriggerBatch::Assignments(triggers) => {
                        for assignment in triggers {
                            if state.stats.tuples_added >= self.config.max_new_tuples {
                                termination = TerminationReason::TupleLimit;
                                limited = true;
                                break;
                            }
                            changed |=
                                self.fire_trigger(tgd_index, tgd, &assignment, db, state, round);
                        }
                    }
                }
                Self::note_outcome(
                    &mut state.profile,
                    tgd_index,
                    &state.stats,
                    fired_before,
                    satisfied_before,
                    added_before,
                );
                if limited {
                    break 'rounds;
                }
                tgd_floor[tgd_index] = Some(watermark);
            }

            if self.config.apply_egds {
                let egd_start = self.profile_now();
                let egd_changed = self.apply_egds_seminaive(program, db, state, egd_floor);
                if self.config.profile {
                    state.profile.egd_micros += self.profile_now().saturating_sub(egd_start);
                }
                changed = changed || egd_changed;
            }

            if !changed {
                termination = TerminationReason::Fixpoint;
                break;
            }
            if round == self.config.max_rounds {
                termination = TerminationReason::RoundLimit;
            }
        }
        termination
    }

    /// Enforce the program's EGDs with delta-seeded trigger discovery, to a
    /// local fixpoint; returns whether anything changed.
    ///
    /// A unification re-stamps the rewritten tuples into the delta, and the
    /// EGD's floor is only advanced once an evaluation drains with no
    /// substitution — so triggers invalidated by a substitution are simply
    /// re-discovered on the next sweep instead of being acted on stale.
    fn apply_egds_seminaive(
        &self,
        program: &Program,
        db: &mut Database,
        state: &mut RunState,
        egd_floor: &mut [Option<u64>],
    ) -> bool {
        let mut changed_any = false;
        loop {
            let mut changed = false;
            for (egd_index, egd) in program.egds.iter().enumerate() {
                let watermark = db.epoch();
                let assignments = match egd_floor[egd_index] {
                    None => evaluate_with(db, &egd.body, self.config.join),
                    Some(floor) => evaluate_delta_with(db, &egd.body, floor, self.config.join),
                };
                let mut applied = false;
                for assignment in assignments {
                    if self.enforce_equality(egd_index, program, &assignment, db, state) {
                        applied = true;
                        changed = true;
                        // The substitution invalidated the remaining
                        // assignments; re-evaluate from the (unchanged)
                        // floor, which still covers them.
                        break;
                    }
                }
                if applied {
                    break;
                }
                // Fully drained without a substitution: safe to move the
                // floor up to the watermark.
                egd_floor[egd_index] = Some(watermark);
            }
            changed_any = changed_any || changed;
            if !changed {
                break;
            }
        }
        changed_any
    }

    // ------------------------------------------------------------------
    // Shared trigger/equality machinery.
    // ------------------------------------------------------------------

    /// Can `tgd`'s triggers take the staged batch path
    /// ([`stage_full_tgd_triggers`] + [`ChaseEngine::apply_staged_triggers`])?
    ///
    /// Only full TGDs under the restricted chase: they invent no nulls, and
    /// their "head already satisfied" check degenerates to "every head row
    /// is already present", which the insert itself answers.  The oblivious
    /// chase needs the full body assignment for its fired-trigger dedup,
    /// and existential heads need fresh nulls per trigger — both keep the
    /// [`ChaseEngine::fire_trigger`] path.  So do rules whose heads are all
    /// zero-arity atoms (`P() :- Q(x).`): the flat buffer encodes a trigger
    /// as `sum(head arities)` values, which at 0 cannot represent "some
    /// triggers fired" at all.
    fn batchable(&self, tgd: &Tgd) -> bool {
        self.config.mode == ChaseMode::Restricted
            && !self.config.track_support
            && tgd.is_full()
            && tgd.head.iter().map(|a| a.arity()).sum::<usize>() > 0
    }

    /// Apply one rule's staged trigger batch: one `chunks_exact` slice per
    /// trigger, inserted through the arena's slice path
    /// ([`ontodq_relational::RelationInstance::insert_slice_unchecked`]).
    ///
    /// For a full TGD under the restricted chase, a trigger is *satisfied*
    /// exactly when every one of its head rows is already present — i.e.
    /// when the inserts all report duplicates — so the satisfaction probe
    /// and the insert fuse into a single hash lookup per head atom, and the
    /// per-trigger statistics come out identical to the
    /// [`ChaseEngine::fire_trigger`] path.  Returns
    /// `(changed, hit_tuple_limit)`; on a tuple-limit hit the remaining
    /// triggers are dropped unconsumed, exactly like the assignment path
    /// (the caller leaves the rule's floor untouched so a resume
    /// rediscovers them).
    fn apply_staged_triggers(
        &self,
        tgd_index: usize,
        tgd: &Tgd,
        staged: &[Value],
        db: &mut Database,
        state: &mut RunState,
        round: usize,
    ) -> (bool, bool) {
        let chunk: usize = tgd.head.iter().map(|a| a.arity()).sum();
        // `batchable` keeps zero-arity-head rules off this path (a 0-sized
        // chunk cannot encode trigger counts); guard anyway so a future
        // caller cannot hit `chunks_exact(0)`'s panic.
        if chunk == 0 {
            return (false, false);
        }
        let mut changed = false;
        if let [atom] = &tgd.head[..] {
            // Single-head rules (the common case): resolve the relation
            // once per batch instead of once per trigger.
            let max_new_tuples = self.config.max_new_tuples;
            let relation = db.relation_or_create(&atom.predicate, atom.arity());
            for row in staged.chunks_exact(chunk) {
                if state.stats.tuples_added >= max_new_tuples {
                    return (changed, true);
                }
                if relation.insert_slice_unchecked(row) {
                    state.stats.tuples_added += 1;
                    state.stats.triggers_fired += 1;
                    changed = true;
                    if state.provenance.recorded {
                        state.provenance.record(ChaseStep {
                            rule_index: tgd_index,
                            rule_label: tgd.label.clone(),
                            produced: vec![(atom.predicate.clone(), Tuple::new(row.to_vec()))],
                            round,
                        });
                    }
                } else {
                    state.stats.triggers_satisfied += 1;
                }
            }
            return (changed, false);
        }
        for row in staged.chunks_exact(chunk) {
            if state.stats.tuples_added >= self.config.max_new_tuples {
                return (changed, true);
            }
            let mut offset = 0;
            let mut any_added = false;
            let mut produced = Vec::new();
            for atom in &tgd.head {
                let slice = &row[offset..offset + atom.arity()];
                offset += atom.arity();
                if db
                    .relation_or_create(&atom.predicate, atom.arity())
                    .insert_slice_unchecked(slice)
                {
                    state.stats.tuples_added += 1;
                    any_added = true;
                    if state.provenance.recorded {
                        produced.push((atom.predicate.clone(), Tuple::new(slice.to_vec())));
                    }
                }
            }
            if any_added {
                state.stats.triggers_fired += 1;
                changed = true;
                if !produced.is_empty() {
                    state.provenance.record(ChaseStep {
                        rule_index: tgd_index,
                        rule_label: tgd.label.clone(),
                        produced,
                        round,
                    });
                }
            } else {
                state.stats.triggers_satisfied += 1;
            }
        }
        (changed, false)
    }

    /// Process one TGD trigger: dedup (oblivious) or satisfaction-check
    /// (restricted), then fire — inventing fresh nulls for existential
    /// variables and inserting the instantiated head atoms.  Returns whether
    /// the database changed.
    fn fire_trigger(
        &self,
        tgd_index: usize,
        tgd: &Tgd,
        assignment: &ontodq_datalog::Assignment,
        db: &mut Database,
        state: &mut RunState,
        round: usize,
    ) -> bool {
        match self.config.mode {
            ChaseMode::Oblivious => {
                let key = (
                    tgd_index,
                    assignment
                        .iter()
                        .map(|(v, val)| (*v, *val))
                        .collect::<Vec<_>>(),
                );
                if !state.fired.insert(key) {
                    return false;
                }
            }
            ChaseMode::Restricted => {
                // Skip the trigger when the head is already satisfied by
                // some extension of the assignment.  Full TGDs fall through
                // instead: their only extension is the trigger itself, so
                // the inserts below double as the satisfaction check
                // (all-duplicates == satisfied), and a duplicate insert
                // bumps the existing row's support count.
                if !tgd.is_full() {
                    let head_atoms: Vec<_> = tgd.head.iter().collect();
                    if has_extension(db, &head_atoms, assignment) {
                        state.stats.triggers_satisfied += 1;
                        return false;
                    }
                }
            }
        }

        let mut extended = assignment.clone();
        for var in tgd.existential_variables() {
            let fresh = Value::Null(state.nulls.fresh());
            state.stats.nulls_created += 1;
            extended.bind(var, fresh);
        }
        let mut produced = Vec::new();
        let mut derived = Vec::new();
        let track = state.provenance.support.is_enabled();
        let mut changed = false;
        for head_atom in &tgd.head {
            let tuple = extended
                .ground_atom(head_atom)
                .expect("head variables are bound by the trigger and fresh nulls");
            if track {
                derived.push((head_atom.predicate.clone(), tuple.clone()));
            }
            let added = db
                .relation_or_create(&head_atom.predicate, head_atom.arity())
                .insert_unchecked(tuple.clone());
            if added {
                state.stats.tuples_added += 1;
                changed = true;
                produced.push((head_atom.predicate.clone(), tuple));
            }
        }
        if track {
            // Record even a satisfied trigger: it is an alternative
            // derivation of its (already-present) head facts.
            let body = tgd
                .body
                .atoms
                .iter()
                .filter_map(|atom| {
                    assignment
                        .ground_atom(atom)
                        .map(|tuple| (atom.predicate.clone(), tuple))
                })
                .collect();
            state.provenance.support.record(TriggerRecord {
                rule_index: tgd_index,
                body,
                derived,
                round,
            });
        }
        if self.config.mode == ChaseMode::Restricted && tgd.is_full() && !changed {
            state.stats.triggers_satisfied += 1;
            return false;
        }
        state.stats.triggers_fired += 1;
        if !produced.is_empty() {
            state.provenance.record(ChaseStep {
                rule_index: tgd_index,
                rule_label: tgd.label.clone(),
                produced,
                round,
            });
        }
        changed
    }

    /// Enforce one EGD assignment: unify a null side (returning `true`, the
    /// database changed) or record a hard violation / skip (returning
    /// `false`).
    fn enforce_equality(
        &self,
        egd_index: usize,
        program: &Program,
        assignment: &ontodq_datalog::Assignment,
        db: &mut Database,
        state: &mut RunState,
    ) -> bool {
        let egd = &program.egds[egd_index];
        let left = assignment.get(&egd.left).cloned();
        let right = assignment.get(&egd.right).cloned();
        let (left, right) = match (left, right) {
            (Some(l), Some(r)) => (l, r),
            // Unbound head variable: ill-formed EGD; skip.
            _ => return false,
        };
        if left == right {
            return false;
        }
        match (&left, &right) {
            (Value::Null(id), other) | (other, Value::Null(id)) => {
                // Advance the epoch first so the rewritten tuples land in
                // the delta of every rule floor taken so far.
                db.advance_epoch();
                db.substitute_null(*id, other);
                state.stats.egd_unifications += 1;
                true
            }
            _ => {
                state.stats.egd_violations += 1;
                state.violations.egd.push(EgdViolation {
                    egd_index,
                    label: egd.label.clone(),
                    left,
                    right,
                    witness: assignment.clone(),
                });
                false
            }
        }
    }
}

impl ChaseEngine {
    /// **Delete-and-rederive (DRed)** retraction of extensional facts from a
    /// maintained [`ChaseState`].
    ///
    /// The three phases, in order:
    ///
    /// 1. **Over-approximate.**  Compute the transitive consequence closure
    ///    of `requested` *against the still-visible instance* — triggers are
    ///    enumerated before anything is tombstoned, so simultaneous
    ///    deletions cannot hide each other's triggers.  When `graph` carries
    ///    a recorded [`SupportGraph`], the closure walks its edges; otherwise
    ///    it is re-derived by evaluation: each condemned fact is unified into
    ///    every matching rule-body atom, the rest of the body is joined out,
    ///    and the grounded heads (or, for existential heads, every row
    ///    matching the frontier-ground positions) are condemned in turn.
    ///    Facts in `protected` — the surviving extensional base — are never
    ///    condemned (explicitly requested facts bypass protection).
    /// 2. **Delete.**  Tombstone every condemned fact
    ///    ([`Database::delete`]); live row ids and the sorted-stamp window
    ///    structure are untouched, so unaffected rules' watermarks stay
    ///    exact.
    /// 3. **Re-derive.**  Reset the watermarks of exactly the rules whose
    ///    heads write a touched relation and run a normal
    ///    [`ChaseEngine::resume`]: their full re-evaluation re-fires every
    ///    surviving trigger — dedup skips tuples that were never deleted,
    ///    while a tuple with an alternative support is re-inserted as a
    ///    fresh row at the current epoch and propagates through the other
    ///    rules' deltas like any new fact.
    ///
    /// The resulting instance satisfies retract-then-rederive ==
    /// fresh-chase-of-the-surviving-EDB (modulo labeled-null renaming).
    /// **EGD caveat**: historical null unifications cannot be unwound, so
    /// callers must check [`egds_read_relations`] over the touched
    /// relations first and fall back to a full re-chase when it fires.
    pub fn retract(
        &self,
        program: &Program,
        state: &mut ChaseState,
        protected: &Database,
        requested: &[(String, Tuple)],
        graph: Option<&SupportGraph>,
    ) -> RetractResult {
        state.sync_with(program);
        // Seeds: the requested facts actually present (deduplicated,
        // discovery order preserved).
        let mut seeds: Vec<(String, Tuple)> = Vec::new();
        let mut seen: HashSet<(String, Tuple)> = HashSet::new();
        for (predicate, tuple) in requested {
            if state.database.contains(predicate, tuple) {
                let fact = (predicate.clone(), tuple.clone());
                if seen.insert(fact.clone()) {
                    seeds.push(fact);
                }
            }
        }
        // Phase 1: over-approximated consequence closure, computed while
        // every fact is still visible.
        let cascade_start = self.profile_now();
        let condemned = match graph {
            Some(g) if g.is_enabled() => g.cascade(&seeds, &|relation, tuple| {
                protected.contains(relation, tuple)
            }),
            _ => self.cascade_consequences(program, &state.database, protected, &seeds),
        };
        // Phase 2: tombstone the closure.
        let delete_start = self.profile_now();
        let seed_set: HashSet<&(String, Tuple)> = seeds.iter().collect();
        let mut stats = RetractStats {
            requested: requested.len(),
            ..Default::default()
        };
        let mut touched: BTreeSet<&str> = BTreeSet::new();
        for fact in &condemned {
            if state.database.delete(&fact.0, &fact.1) {
                if seed_set.contains(fact) {
                    stats.retracted += 1;
                } else {
                    stats.cascaded += 1;
                }
                touched.insert(&fact.0);
            }
        }
        // Phase 3: re-open exactly the rules that can write a touched
        // relation, then resume — the restricted chase's dedup makes the
        // re-evaluation a no-op on everything that survived.  Rules whose
        // *negated* body atoms read a touched relation are re-opened too: a
        // deletion can enable their triggers (negation is non-monotone),
        // and a delta-restricted evaluation would never see them.
        for (index, tgd) in program.tgds.iter().enumerate() {
            let writes_touched = tgd
                .head
                .iter()
                .any(|atom| touched.contains(atom.predicate.as_str()));
            let negation_reads_touched = tgd
                .body
                .negated
                .iter()
                .any(|atom| touched.contains(atom.predicate.as_str()));
            if writes_touched || negation_reads_touched {
                state.tgd_floor[index] = None;
            }
        }
        let rederive_start = self.profile_now();
        let mut chase = self.resume(program, state);
        stats.rederived = chase.stats.tuples_added;
        if self.config.profile {
            chase.profile.dred = DredTiming {
                batches: 1,
                cascade_micros: delete_start.saturating_sub(cascade_start),
                delete_micros: rederive_start.saturating_sub(delete_start),
                rederive_micros: self.profile_now().saturating_sub(rederive_start),
            };
        }
        RetractResult { stats, chase }
    }

    /// The evaluation-driven DRed delete-phase closure (the fallback when no
    /// recorded [`SupportGraph`] is at hand): worklist over condemned facts,
    /// each unified into every matching body atom of every rule, the rest of
    /// the body joined against the (still fully visible) instance.
    fn cascade_consequences(
        &self,
        program: &Program,
        db: &Database,
        protected: &Database,
        seeds: &[(String, Tuple)],
    ) -> Vec<(String, Tuple)> {
        let mut condemned: Vec<(String, Tuple)> = Vec::new();
        let mut seen: HashSet<(String, Tuple)> = HashSet::new();
        let mut queue: VecDeque<(String, Tuple)> = VecDeque::new();
        for seed in seeds {
            if seen.insert(seed.clone()) {
                condemned.push(seed.clone());
                queue.push_back(seed.clone());
            }
        }
        let empty = Assignment::new();
        let mut candidates: Vec<(String, Tuple)> = Vec::new();
        while let Some((predicate, tuple)) = queue.pop_front() {
            candidates.clear();
            for tgd in &program.tgds {
                for (position, atom) in tgd.body.atoms.iter().enumerate() {
                    if atom.predicate != predicate {
                        continue;
                    }
                    let Some(partial) = empty.match_atom(atom, &tuple) else {
                        continue;
                    };
                    let rest: Vec<&Atom> = tgd
                        .body
                        .atoms
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != position)
                        .map(|(_, a)| a)
                        .collect();
                    extend_over_atoms(db, &rest, partial, &mut |assignment| {
                        // `extend_over_atoms` handles positive atoms only;
                        // comparisons and negated atoms are checked here.
                        if !tgd
                            .body
                            .comparisons
                            .iter()
                            .all(|cmp| assignment.satisfies_comparison(cmp))
                        {
                            return;
                        }
                        if tgd
                            .body
                            .negated
                            .iter()
                            .any(|negated| has_extension(db, &[negated], assignment))
                        {
                            return;
                        }
                        for head in &tgd.head {
                            match assignment.ground_atom(head) {
                                Some(grounded) => {
                                    if db.contains(&head.predicate, &grounded) {
                                        candidates.push((head.predicate.clone(), grounded));
                                    }
                                }
                                None => {
                                    // Existential positions stay unbound:
                                    // every present row matching the
                                    // frontier-ground positions is an
                                    // over-approximated consequence.
                                    let bindings: Vec<(usize, Value)> = head
                                        .terms
                                        .iter()
                                        .enumerate()
                                        .filter_map(|(pos, term)| {
                                            match assignment.apply_term(term) {
                                                Term::Const(value) => Some((pos, value)),
                                                Term::Var(_) => None,
                                            }
                                        })
                                        .collect();
                                    if let Ok(relation) = db.relation(&head.predicate) {
                                        let refs: Vec<(usize, &Value)> =
                                            bindings.iter().map(|(p, v)| (*p, v)).collect();
                                        for grounded in relation.select(&refs) {
                                            candidates.push((head.predicate.clone(), grounded));
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
            }
            for fact in candidates.drain(..) {
                if protected.contains(&fact.0, &fact.1) {
                    continue;
                }
                if seen.insert(fact.clone()) {
                    condemned.push(fact.clone());
                    queue.push_back(fact);
                }
            }
        }
        condemned
    }

    /// **Demand-driven chase**: specialize `program` to `query` with the
    /// magic-set transformation
    /// ([`ontodq_datalog::analysis::magic_transform`]) and chase only the
    /// fragment the query can observe.
    ///
    /// The input instance is pruned to the relevant relations, the magic
    /// seed facts are inserted so they form the first delta, and the
    /// specialized program runs through the engine's regular (delta-driven
    /// semi-naive, or parallel) machinery.  Negative constraints are not
    /// checked — demand-driven evaluation answers queries, the full
    /// assessment path audits consistency.
    ///
    /// Certain answers to `query` over the result equal those over a full
    /// chase of `program` (modulo labeled-null renaming); the resulting
    /// instance itself contains only the demanded portion.
    pub fn chase_for_query(
        &self,
        program: &Program,
        database: &Database,
        query: &Conjunction,
    ) -> ChaseResult {
        let demand = magic_transform(program, query);
        self.chase_demand(database, &demand)
    }

    /// Run an already-computed [`DemandProgram`] (the reusable half of
    /// [`ChaseEngine::chase_for_query`], for callers that answer the same
    /// query shape against many instances).
    pub fn chase_demand(&self, database: &Database, demand: &DemandProgram) -> ChaseResult {
        // Prune: the demand chase only ever reads the relevant relations.
        let names: Vec<&str> = demand.relevant.iter().map(String::as_str).collect();
        let mut db = database.restrict_to(&names);
        // Seed the magic relations; the engine's first evaluation of every
        // rule is a full join (floors start at `None`), so the seeds are
        // discovered exactly like a first delta.
        for (predicate, tuple) in &demand.seeds {
            db.relation_or_create(predicate, tuple.arity())
                .insert_unchecked(tuple.clone());
        }
        let engine = ChaseEngine::new(ChaseConfig {
            check_constraints: false,
            ..self.config.clone()
        })
        .with_clock(self.clock.clone());
        engine.run(&demand.program, &db)
    }
}

/// Convenience function: run the restricted semi-naive chase with default
/// configuration.
pub fn chase(program: &Program, database: &Database) -> ChaseResult {
    ChaseEngine::with_defaults().run(program, database)
}

/// Convenience function: demand-driven chase of `program` restricted to
/// `query` — see [`ChaseEngine::chase_for_query`].
pub fn chase_on_demand(program: &Program, database: &Database, query: &Conjunction) -> ChaseResult {
    ChaseEngine::with_defaults().chase_for_query(program, database, query)
}

/// Convenience function: run the restricted chase with the naive reference
/// strategy.
pub fn chase_naive(program: &Program, database: &Database) -> ChaseResult {
    ChaseEngine::new(ChaseConfig::naive()).run(program, database)
}

/// Convenience function: run the restricted chase with parallel per-rule
/// trigger discovery (one worker per available CPU) — see
/// [`EvalStrategy::Parallel`] for the determinism guarantee.
pub fn chase_parallel(program: &Program, database: &Database) -> ChaseResult {
    ChaseEngine::new(ChaseConfig::parallel()).run(program, database)
}

/// Convenience function: resume the chase of `program` over `state` with the
/// default engine configuration — see [`ChaseEngine::resume`].  Call once on
/// a fresh [`ChaseState`] for the initial full chase, then again after each
/// [`ChaseState::insert_batch`] for an incremental re-chase.
pub fn chase_incremental(program: &Program, state: &mut ChaseState) -> ChaseResult {
    ChaseEngine::with_defaults().resume(program, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_datalog::parse_program;
    use ontodq_relational::Tuple;

    fn hospital_db() -> Database {
        let mut db = Database::new();
        for (u, w) in [
            ("Standard", "W1"),
            ("Standard", "W2"),
            ("Intensive", "W3"),
            ("Terminal", "W4"),
        ] {
            db.insert_values("UnitWard", [u, w]).unwrap();
        }
        for (w, d, p) in [
            ("W1", "Sep/5", "Tom Waits"),
            ("W1", "Sep/6", "Tom Waits"),
            ("W3", "Sep/7", "Tom Waits"),
            ("W2", "Sep/9", "Tom Waits"),
            ("W2", "Sep/6", "Lou Reed"),
            ("W1", "Sep/5", "Lou Reed"),
        ] {
            db.insert_values("PatientWard", [w, d, p]).unwrap();
        }
        for (u, d, n, t) in [
            ("Intensive", "Sep/5", "Cathy", "cert"),
            ("Standard", "Sep/5", "Helen", "cert"),
            ("Standard", "Sep/6", "Helen", "cert"),
            ("Terminal", "Sep/5", "Susan", "non-c"),
            ("Standard", "Sep/9", "Mark", "non-c"),
        ] {
            db.insert_values("WorkingSchedules", [u, d, n, t]).unwrap();
        }
        db
    }

    /// All strategies, for tests that must hold under each.  The parallel
    /// config pins an explicit team size so the scoped pool really runs
    /// multi-threaded even on single-CPU test machines.
    fn strategies() -> [ChaseConfig; 3] {
        [
            ChaseConfig::semi_naive(),
            ChaseConfig::naive(),
            ChaseConfig::parallel_with_threads(4),
        ]
    }

    #[test]
    fn upward_navigation_rule7_generates_patient_unit() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        for config in strategies() {
            let result = ChaseEngine::new(config).run(&program, &hospital_db());
            assert_eq!(result.termination, TerminationReason::Fixpoint);
            let pu = result.database.relation("PatientUnit").unwrap();
            // Six PatientWard tuples, each rolled up to exactly one unit.
            assert_eq!(pu.len(), 6);
            assert!(pu.contains(&Tuple::from_iter(["Intensive", "Sep/7", "Tom Waits"])));
            assert!(pu.contains(&Tuple::from_iter(["Standard", "Sep/5", "Tom Waits"])));
            assert!(result.violations.is_empty());
            assert_eq!(result.stats.nulls_created, 0);
        }
    }

    #[test]
    fn downward_navigation_rule8_creates_null_shifts() {
        let program =
            parse_program("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n")
                .unwrap();
        for config in strategies() {
            let result = ChaseEngine::new(config).run(&program, &hospital_db());
            let shifts = result.database.relation("Shifts").unwrap();
            // Standard unit has 2 wards; Intensive and Terminal have 1 each.
            // WorkingSchedules: Intensive×1, Standard×3, Terminal×1 → 1 + 3*2 + 1 = 8.
            assert_eq!(shifts.len(), 8);
            assert_eq!(result.stats.nulls_created, 8);
            // Mark works in the Standard unit on Sep/9 → shifts in W1 and W2.
            let marks: Vec<_> = shifts
                .iter()
                .filter(|t| t.get(2) == Some(&Value::str("Mark")))
                .collect();
            assert_eq!(marks.len(), 2);
            assert!(marks.iter().all(|t| t.get(3).unwrap().is_null()));
            let wards: Vec<_> = marks.iter().map(|t| *t.get(0).unwrap()).collect();
            assert!(wards.contains(&Value::str("W1")));
            assert!(wards.contains(&Value::str("W2")));
        }
    }

    #[test]
    fn restricted_chase_reaches_fixpoint_and_is_idempotent() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let first = chase(&program, &hospital_db());
        let second = chase(&program, &first.database);
        assert_eq!(second.stats.tuples_added, 0);
        assert_eq!(second.termination, TerminationReason::Fixpoint);
        assert_eq!(
            first.database.relation("PatientUnit").unwrap().len(),
            second.database.relation("PatientUnit").unwrap().len()
        );
    }

    #[test]
    fn oblivious_chase_fires_each_trigger_once() {
        let program =
            parse_program("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n")
                .unwrap();
        for strategy in [
            EvalStrategy::SemiNaive,
            EvalStrategy::Naive,
            EvalStrategy::Parallel,
        ] {
            let config = ChaseConfig {
                mode: ChaseMode::Oblivious,
                strategy,
                ..Default::default()
            };
            let result = ChaseEngine::new(config).run(&program, &hospital_db());
            // Oblivious chase produces the same 8 tuples here because every
            // trigger is fresh exactly once.
            assert_eq!(result.database.relation("Shifts").unwrap().len(), 8);
            assert_eq!(result.termination, TerminationReason::Fixpoint);
        }
    }

    #[test]
    fn non_terminating_program_hits_round_or_tuple_limit() {
        let program = parse_program("R(y, z) :- R(x, y).\n").unwrap();
        let mut db = Database::new();
        db.insert_values("R", ["a", "b"]).unwrap();
        for strategy in [
            EvalStrategy::SemiNaive,
            EvalStrategy::Naive,
            EvalStrategy::Parallel,
        ] {
            let config = ChaseConfig {
                strategy,
                max_rounds: 10,
                max_new_tuples: 50,
                ..Default::default()
            };
            let result = ChaseEngine::new(config).run(&program, &db);
            assert_ne!(result.termination, TerminationReason::Fixpoint);
            assert!(result.stats.tuples_added > 0);
        }
    }

    #[test]
    fn egd_unifies_nulls_with_constants() {
        // Shifts gets null shifts for Mark in W1 and W2; the EGD says a
        // nurse's shifts on a given day are the same across wards, and an
        // explicit fact pins the W1 shift to "morning" — so the W2 null must
        // be unified with "morning".
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w2, d, n, s2).\n",
        )
        .unwrap();
        for config in strategies() {
            let mut db = hospital_db();
            db.insert_values("Shifts", ["W1", "Sep/9", "Mark", "morning"])
                .unwrap();
            let result = ChaseEngine::new(config).run(&program, &db);
            let shifts = result.database.relation("Shifts").unwrap();
            let marks: Vec<_> = shifts
                .iter()
                .filter(|t| t.get(2) == Some(&Value::str("Mark")))
                .collect();
            // W1 collapses onto the explicit "morning" tuple, and the W2 null is
            // unified with "morning" by the EGD.
            assert_eq!(marks.len(), 2);
            assert!(marks
                .iter()
                .all(|t| t.get(3) == Some(&Value::str("morning"))));
            assert!(result.stats.egd_unifications >= 1);
            assert!(result.violations.egd.is_empty());
        }
    }

    #[test]
    fn egd_on_distinct_constants_is_a_hard_violation() {
        let program = parse_program(
            "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).\n",
        )
        .unwrap();
        for config in strategies() {
            let mut db = hospital_db();
            db.insert_values("Thermometer", ["W1", "B1", "Helen"])
                .unwrap();
            db.insert_values("Thermometer", ["W2", "B2", "Susan"])
                .unwrap();
            let result = ChaseEngine::new(config).run(&program, &db);
            assert!(!result.violations.egd.is_empty());
            assert!(!result.is_consistent_model());
            let v = &result.violations.egd[0];
            let pair = (v.left, v.right);
            assert!(
                pair == (Value::str("B1"), Value::str("B2"))
                    || pair == (Value::str("B2"), Value::str("B1"))
            );
        }
    }

    #[test]
    fn negative_constraint_violations_are_reported() {
        // "No patient was in the intensive care unit after August 2005" —
        // modelled here with the Intensive ward W3 and a violating tuple.
        let program =
            parse_program("! :- PatientWard(w, d, p), UnitWard(Intensive, w).\n").unwrap();
        for config in strategies() {
            let result = ChaseEngine::new(config).run(&program, &hospital_db());
            assert_eq!(result.violations.nc.len(), 1);
            assert_eq!(result.stats.nc_violations, 1);
            assert!(!result.is_consistent_model());
        }
    }

    #[test]
    fn referential_constraint_with_negation() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             ! :- PatientUnit(u, d, p), not Unit(u).\n\
             Unit(Standard).\nUnit(Intensive).\nUnit(Terminal).\n",
        )
        .unwrap();
        let result = chase(&program, &hospital_db());
        // Every generated unit is declared → no violation.
        assert!(result.violations.nc.is_empty());

        // Drop one Unit fact → violations appear.
        let program2 = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             ! :- PatientUnit(u, d, p), not Unit(u).\n\
             Unit(Standard).\nUnit(Terminal).\n",
        )
        .unwrap();
        let result2 = chase(&program2, &hospital_db());
        assert!(!result2.violations.nc.is_empty());
    }

    #[test]
    fn conjunctive_head_rule_10_links_fresh_unit() {
        // Rule (9) of the paper: DischargePatients generates PatientUnit with
        // an unknown unit, plus the InstitutionUnit link for that unit.
        let program = parse_program(
            "InstitutionUnit(i, u), PatientUnit(u, d, p) :- DischargePatients(i, d, p).\n",
        )
        .unwrap();
        for config in strategies() {
            let mut db = Database::new();
            db.insert_values("DischargePatients", ["H1", "Sep/9", "Tom Waits"])
                .unwrap();
            let result = ChaseEngine::new(config).run(&program, &db);
            let iu = result.database.relation("InstitutionUnit").unwrap();
            let pu = result.database.relation("PatientUnit").unwrap();
            assert_eq!(iu.len(), 1);
            assert_eq!(pu.len(), 1);
            // The same fresh null links both atoms.
            let unit_in_iu = *iu.tuples()[0].get(1).unwrap();
            let unit_in_pu = *pu.tuples()[0].get(0).unwrap();
            assert!(unit_in_iu.is_null());
            assert_eq!(unit_in_iu, unit_in_pu);
            assert_eq!(result.stats.nulls_created, 1);
        }
    }

    #[test]
    fn provenance_records_producing_rules() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let config = ChaseConfig {
            record_provenance: true,
            ..Default::default()
        };
        let result = ChaseEngine::new(config).run(&program, &hospital_db());
        assert!(result.provenance.recorded);
        assert_eq!(result.provenance.steps_for_relation("PatientUnit").len(), 6);
        let produced = result
            .provenance
            .producer_of(
                "PatientUnit",
                &Tuple::from_iter(["Standard", "Sep/5", "Tom Waits"]),
            )
            .unwrap();
        assert_eq!(produced.rule_index, 0);
    }

    #[test]
    fn chase_does_not_mutate_the_input_database() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let db = hospital_db();
        let before = db.total_tuples();
        let _ = chase(&program, &db);
        assert_eq!(db.total_tuples(), before);
        assert!(!db.has_relation("PatientUnit"));
    }

    #[test]
    fn facts_from_the_program_are_loaded() {
        let program =
            parse_program("Unit(Standard).\nUnit(Intensive).\nCopy(x) :- Unit(x).\n").unwrap();
        let result = chase(&program, &Database::new());
        assert_eq!(result.database.relation("Unit").unwrap().len(), 2);
        assert_eq!(result.database.relation("Copy").unwrap().len(), 2);
    }

    // ------------------------------------------------------------------
    // Semi-naive vs naive agreement.
    // ------------------------------------------------------------------

    #[test]
    fn seminaive_matches_naive_on_recursive_datalog() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "e")] {
            db.insert_values("E", [a, b]).unwrap();
        }
        let naive = chase_naive(&program, &db);
        let semi = chase(&program, &db);
        assert_eq!(naive.termination, TerminationReason::Fixpoint);
        assert_eq!(semi.termination, TerminationReason::Fixpoint);
        let nt: std::collections::BTreeSet<_> =
            naive.database.relation("T").unwrap().iter().collect();
        let st: std::collections::BTreeSet<_> =
            semi.database.relation("T").unwrap().iter().collect();
        assert_eq!(nt, st);
        // The semi-naive run considers strictly fewer (or equally many)
        // satisfied triggers than full re-evaluation every round.
        assert!(semi.stats.triggers_satisfied <= naive.stats.triggers_satisfied);
    }

    #[test]
    fn seminaive_egd_unification_retriggers_rules() {
        // The unification of the shift null must flow back into a TGD that
        // copies pinned-down shifts.
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w2, d, n, s2).\n\
             KnownShift(n, s) :- Shifts(w, d, n, s), Known(s).\n\
             Known(\"morning\").\n",
        )
        .unwrap();
        let mut db = hospital_db();
        db.insert_values("Shifts", ["W1", "Sep/9", "Mark", "morning"])
            .unwrap();
        for config in strategies() {
            let result = ChaseEngine::new(config.clone()).run(&program, &db);
            let known = result.database.relation("KnownShift").unwrap();
            // Mark's W2 shift is only known *after* the EGD unifies the null
            // with "morning"; the semi-naive delta must pick that up.
            assert!(
                known.contains(&Tuple::from_iter(["Mark", "morning"])),
                "strategy {:?} missed the EGD-retriggered rule",
                config.strategy
            );
        }
    }

    // ------------------------------------------------------------------
    // Resumable / incremental chase.
    // ------------------------------------------------------------------

    #[test]
    fn first_resume_equals_a_full_chase() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert_values("E", [a, b]).unwrap();
        }
        let scratch = chase(&program, &db);
        let mut state = ChaseState::new(&program, &db);
        let resumed = chase_incremental(&program, &mut state);
        assert_eq!(resumed.termination, TerminationReason::Fixpoint);
        assert_eq!(
            resumed.database.relation("T").unwrap().len(),
            scratch.database.relation("T").unwrap().len()
        );
        assert_eq!(resumed.stats.tuples_added, scratch.stats.tuples_added);
    }

    #[test]
    fn incremental_rechase_matches_from_scratch_and_is_cheaper() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..20 {
            db.insert_values("E", [format!("n{i}"), format!("n{}", i + 1)])
                .unwrap();
        }
        let mut state = ChaseState::new(&program, &db);
        let initial = chase_incremental(&program, &mut state);
        assert_eq!(initial.termination, TerminationReason::Fixpoint);

        // Append one edge and re-chase incrementally.
        let added = state
            .insert_batch([("E".to_string(), Tuple::from_iter(["n20", "n21"]))])
            .unwrap();
        assert_eq!(added, 1);
        let incremental = chase_incremental(&program, &mut state);
        assert_eq!(incremental.termination, TerminationReason::Fixpoint);

        let mut full_db = db.clone();
        full_db.insert_values("E", ["n20", "n21"]).unwrap();
        let scratch = chase(&program, &full_db);
        let st: std::collections::BTreeSet<_> =
            scratch.database.relation("T").unwrap().iter().collect();
        let it: std::collections::BTreeSet<_> =
            incremental.database.relation("T").unwrap().iter().collect();
        assert_eq!(st, it);
        // The incremental step only derived the new paths (those ending in
        // n21), a strict subset of the full re-derivation.
        assert!(incremental.stats.tuples_added < scratch.stats.tuples_added);
        assert_eq!(incremental.stats.tuples_added, 21);
    }

    #[test]
    fn resume_empty_batch_is_a_cheap_noop() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let mut state = ChaseState::new(&program, &hospital_db());
        let _ = chase_incremental(&program, &mut state);
        let again = chase_incremental(&program, &mut state);
        assert_eq!(again.stats.tuples_added, 0);
        assert_eq!(again.stats.triggers_fired, 0);
        assert_eq!(again.termination, TerminationReason::Fixpoint);
    }

    /// Round-tripping a state through its persisted parts must be invisible
    /// to the resumable path: a state rebuilt with `from_parts` resumes
    /// exactly like the original (same incremental derivations, no spurious
    /// re-evaluation of old rows, no null collisions).
    #[test]
    fn state_rebuilt_from_parts_resumes_identically() {
        let program =
            parse_program("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n")
                .unwrap();
        let mut live = ChaseState::new(&program, &hospital_db());
        let _ = chase_incremental(&program, &mut live);

        let mut rebuilt = ChaseState::from_parts(
            live.database().clone(),
            live.tgd_floors().to_vec(),
            live.egd_floors().to_vec(),
            live.next_null(),
        );
        assert_eq!(rebuilt.next_null(), live.next_null());
        assert_eq!(rebuilt.tgd_floors(), live.tgd_floors());

        let batch = [(
            "WorkingSchedules".to_string(),
            Tuple::from_iter(["Intensive", "Sep/9", "Rita", "cert"]),
        )];
        live.insert_batch(batch.clone()).unwrap();
        rebuilt.insert_batch(batch).unwrap();
        let from_live = chase_incremental(&program, &mut live);
        let from_rebuilt = chase_incremental(&program, &mut rebuilt);
        assert_eq!(
            from_rebuilt.stats.tuples_added,
            from_live.stats.tuples_added
        );
        assert_eq!(
            from_rebuilt.stats.triggers_fired,
            from_live.stats.triggers_fired
        );
        assert_eq!(
            from_rebuilt.database.total_tuples(),
            from_live.database.total_tuples()
        );
        // A stale persisted null counter is clamped above the database's
        // nulls rather than trusted.
        let clamped = ChaseState::from_parts(live.database().clone(), vec![], vec![], 0);
        assert!(clamped.next_null() > live.database().max_null_id().unwrap_or(0));
    }

    #[test]
    fn incremental_batch_retriggers_egd_unification() {
        // Initial chase invents a null shift for Mark in W2; a later batch
        // pins the W1 shift to "morning", and the EGD must unify the W2 null
        // on resume — exercising delta-driven EGD floors across batches.
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w2, d, n, s2).\n",
        )
        .unwrap();
        let mut state = ChaseState::new(&program, &hospital_db());
        let initial = chase_incremental(&program, &mut state);
        assert!(initial.stats.nulls_created > 0);

        state
            .insert_batch([(
                "Shifts".to_string(),
                Tuple::from_iter(["W1", "Sep/9", "Mark", "morning"]),
            )])
            .unwrap();
        let resumed = chase_incremental(&program, &mut state);
        assert!(resumed.stats.egd_unifications >= 1);
        let shifts = resumed.database.relation("Shifts").unwrap();
        let marks: Vec<_> = shifts
            .iter()
            .filter(|t| t.get(2) == Some(&Value::str("Mark")))
            .collect();
        assert!(marks
            .iter()
            .all(|t| t.get(3) == Some(&Value::str("morning"))));
    }

    #[test]
    fn fresh_nulls_after_resume_do_not_collide() {
        let program =
            parse_program("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n")
                .unwrap();
        let mut state = ChaseState::new(&program, &hospital_db());
        let initial = chase_incremental(&program, &mut state);
        let nulls_before = initial.database.nulls().len();
        // A new schedule row triggers downward navigation again → new nulls,
        // distinct from all existing ones.
        state
            .insert_batch([(
                "WorkingSchedules".to_string(),
                Tuple::from_iter(["Intensive", "Sep/9", "Rita", "cert"]),
            )])
            .unwrap();
        let resumed = chase_incremental(&program, &mut state);
        assert_eq!(resumed.stats.nulls_created, 1);
        assert_eq!(resumed.database.nulls().len(), nulls_before + 1);
    }

    #[test]
    fn insert_batch_rejects_bad_batches_atomically() {
        let program = parse_program("T(x, y) :- E(x, y).\n").unwrap();
        let mut db = Database::new();
        db.insert_values("E", ["a", "b"]).unwrap();
        let mut state = ChaseState::new(&program, &db);
        // A bad fact anywhere in the batch rejects the whole batch: the
        // valid leading fact must not be applied.
        let before = state.database().total_tuples();
        let err = state.insert_batch([
            ("E".to_string(), Tuple::from_iter(["c", "d"])),
            ("E".to_string(), Tuple::from_iter(["only-one"])),
        ]);
        assert!(err.is_err());
        assert_eq!(state.database().total_tuples(), before);
        // Two facts disagreeing on a brand-new relation's arity are rejected
        // too.
        let err = state.insert_batch([
            ("Fresh".to_string(), Tuple::from_iter(["x"])),
            ("Fresh".to_string(), Tuple::from_iter(["x", "y"])),
        ]);
        assert!(err.is_err());
        assert!(!state.database().has_relation("Fresh"));
    }

    #[test]
    fn seminaive_builds_indexes_for_rule_bodies() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let result = chase(&program, &hospital_db());
        // The join variable w sits at PatientWard.0 and UnitWard.1.
        assert!(result
            .database
            .relation("PatientWard")
            .unwrap()
            .has_index(0));
        assert!(result.database.relation("UnitWard").unwrap().has_index(1));
        // The naive reference strategy builds the same indexes, so strategy
        // comparisons isolate the delta-evaluation gain.
        let naive = chase_naive(&program, &hospital_db());
        assert!(naive.database.relation("PatientWard").unwrap().has_index(0));
        // Disabled by config.
        let config = ChaseConfig {
            build_indexes: false,
            ..Default::default()
        };
        let bare = ChaseEngine::new(config).run(&program, &hospital_db());
        assert!(!bare.database.relation("PatientWard").unwrap().has_index(0));
    }

    // ------------------------------------------------------------------
    // Demand-driven (magic-set) chase.
    // ------------------------------------------------------------------

    /// The certain answers to `query` over `db`, as sorted ground tuples.
    fn certain(db: &Database, query: &ontodq_datalog::Conjunction) -> Vec<Tuple> {
        let vars = query.variables();
        let mut out: Vec<Tuple> = crate::eval::evaluate_project(db, query, &vars)
            .into_iter()
            .filter(|t| t.is_ground())
            .collect();
        out.sort();
        out
    }

    fn query_body(text: &str) -> ontodq_datalog::Conjunction {
        match ontodq_datalog::parse_rule(&format!("! :- {text}")).unwrap() {
            ontodq_datalog::Rule::Constraint(nc) => nc.body,
            other => panic!("expected a body, got {other}"),
        }
    }

    #[test]
    fn demand_chase_answers_equal_full_chase_answers() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap();
        let db = hospital_db();
        let full = chase(&program, &db);
        for text in [
            "PatientUnit(u, d, p), p = \"Tom Waits\".",
            "PatientUnit(Standard, d, p).",
            "Shifts(W2, d, n, s).",
            "PatientUnit(u, d, p).",
        ] {
            let query = query_body(text);
            let demanded = chase_on_demand(&program, &db, &query);
            assert_eq!(
                certain(&demanded.database, &query),
                certain(&full.database, &query),
                "demand answers diverge for {text}"
            );
        }
    }

    #[test]
    fn demand_chase_does_less_work_for_selective_queries() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let db = hospital_db();
        let full = chase(&program, &db);
        let query = query_body("PatientUnit(u, d, p), p = \"Lou Reed\".");
        let demanded = chase_on_demand(&program, &db, &query);
        // Only Lou Reed's two ward rows roll up; the full chase derives six.
        assert_eq!(demanded.stats.tuples_added, 2);
        assert_eq!(full.stats.tuples_added, 6);
        assert!(
            demanded.database.relation("PatientUnit").unwrap().len()
                < full.database.relation("PatientUnit").unwrap().len()
        );
    }

    #[test]
    fn demand_chase_prunes_irrelevant_relations_and_rules() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap();
        let db = hospital_db();
        let query = query_body("PatientUnit(u, d, p), p = \"Tom Waits\".");
        let demanded = chase_on_demand(&program, &db, &query);
        // The Shifts rule (and its null invention) never runs, and the
        // WorkingSchedules relation is not even copied.
        assert_eq!(demanded.stats.nulls_created, 0);
        assert!(!demanded.database.has_relation("WorkingSchedules"));
        assert!(!demanded.database.has_relation("Shifts"));
    }

    #[test]
    fn demand_chase_agrees_under_recursion() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("x", "y")] {
            db.insert_values("E", [a, b]).unwrap();
        }
        let full = chase(&program, &db);
        let query = query_body("T(s, y), s = \"a\".");
        let demanded = chase_on_demand(&program, &db, &query);
        assert_eq!(
            certain(&demanded.database, &query),
            certain(&full.database, &query)
        );
        // The x→y component is never explored.
        assert!(demanded.stats.tuples_added < full.stats.tuples_added);
    }

    #[test]
    fn demand_chase_preserves_egd_unifications() {
        // Mark's W2 shift is a null unified to "morning" through an EGD whose
        // trigger involves a *non-demanded* tuple (the W1 shift): the
        // transformation must keep the Shifts derivation unrestricted.
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w2, d, n, s2).\n",
        )
        .unwrap();
        let mut db = hospital_db();
        db.insert_values("Shifts", ["W1", "Sep/9", "Mark", "morning"])
            .unwrap();
        let full = chase(&program, &db);
        let query = query_body("Shifts(W2, d, n, s), n = \"Mark\".");
        let demanded = chase_on_demand(&program, &db, &query);
        let expected = certain(&full.database, &query);
        assert!(!expected.is_empty());
        assert_eq!(certain(&demanded.database, &query), expected);
    }

    #[test]
    fn demand_chase_works_with_every_strategy() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap();
        let db = hospital_db();
        let full = chase(&program, &db);
        let query = query_body("PatientUnit(u, d, p), p = \"Tom Waits\".");
        let expected = certain(&full.database, &query);
        for config in strategies() {
            let demanded = ChaseEngine::new(config).chase_for_query(&program, &db, &query);
            assert_eq!(certain(&demanded.database, &query), expected);
        }
    }

    /// Regression: a TGD whose body reads another intensional predicate
    /// under negation must see that predicate's *full* extension — pruning
    /// its rules (no positive edge reaches them) made the demand chase
    /// return extra, unsound answers.
    #[test]
    fn demand_chase_respects_negated_intensional_body_atoms() {
        use ontodq_datalog::{Atom, Tgd};
        let mut program = parse_program(
            "Flagged(p) :- Errors(p).\n\
             M2(p) :- M(p).\n",
        )
        .unwrap();
        program.tgds.push(Tgd {
            label: None,
            body: ontodq_datalog::Conjunction::positive(vec![Atom::with_vars("M2", &["p"])])
                .and_not(Atom::with_vars("Flagged", &["p"])),
            head: vec![Atom::with_vars("Good", &["p"])],
        });
        let mut db = Database::new();
        db.insert_values("M", ["alice"]).unwrap();
        db.insert_values("M", ["bob"]).unwrap();
        db.insert_values("Errors", ["bob"]).unwrap();
        let query = query_body("Good(p).");
        let full = chase(&program, &db);
        let demanded = chase_on_demand(&program, &db, &query);
        let expected = certain(&full.database, &query);
        assert_eq!(expected.len(), 1, "only alice is good");
        assert_eq!(certain(&demanded.database, &query), expected);
    }

    // ------------------------------------------------------------------
    // Delete-and-rederive (DRed) retraction.
    // ------------------------------------------------------------------

    fn closure_program() -> Program {
        parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap()
    }

    fn edge_facts(edges: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (a, b) in edges {
            db.insert_values("E", [*a, *b]).unwrap();
        }
        db
    }

    fn relation_tuples(db: &Database, name: &str) -> HashSet<Tuple> {
        db.relation(name)
            .map(|r| r.iter().collect())
            .unwrap_or_default()
    }

    #[test]
    fn retract_cascades_and_rederives_alternative_supports() {
        let program = closure_program();
        // a→b→c plus the direct edge a→c: T(a,c) has two supports.
        let db = edge_facts(&[("a", "b"), ("b", "c"), ("a", "c")]);
        let engine = ChaseEngine::with_defaults();
        let mut state = ChaseState::new(&program, &db);
        engine.resume(&program, &mut state);
        assert_eq!(state.database().relation("T").unwrap().len(), 3);

        let protected = edge_facts(&[("b", "c"), ("a", "c")]);
        let result = engine.retract(
            &program,
            &mut state,
            &protected,
            &[("E".to_string(), Tuple::from_iter(["a", "b"]))],
            None,
        );
        assert_eq!(result.stats.requested, 1);
        assert_eq!(result.stats.retracted, 1);
        // The over-approximation condemns T(a,b) and T(a,c); T(a,c) comes
        // back from its surviving direct-edge support.
        assert!(result.stats.cascaded >= 2);
        assert!(result.stats.rederived >= 1);
        let t = relation_tuples(state.database(), "T");
        assert!(!t.contains(&Tuple::from_iter(["a", "b"])));
        assert!(t.contains(&Tuple::from_iter(["a", "c"])));
        assert!(t.contains(&Tuple::from_iter(["b", "c"])));
        // Equivalence with a fresh chase of the surviving EDB.
        let fresh = chase(&program, &protected);
        assert_eq!(t, relation_tuples(&fresh.database, "T"));
        assert_eq!(
            relation_tuples(state.database(), "E"),
            relation_tuples(&fresh.database, "E"),
        );
    }

    #[test]
    fn retract_of_simultaneous_deletions_is_computed_before_tombstoning() {
        // A 2-cycle: deleting both edges at once must condemn everything,
        // even though each deletion hides the other's triggers.
        let program = closure_program();
        let db = edge_facts(&[("a", "b"), ("b", "a")]);
        let engine = ChaseEngine::with_defaults();
        let mut state = ChaseState::new(&program, &db);
        engine.resume(&program, &mut state);
        let protected = Database::new();
        let result = engine.retract(
            &program,
            &mut state,
            &protected,
            &[
                ("E".to_string(), Tuple::from_iter(["a", "b"])),
                ("E".to_string(), Tuple::from_iter(["b", "a"])),
            ],
            None,
        );
        assert_eq!(result.stats.retracted, 2);
        assert_eq!(result.stats.rederived, 0);
        assert!(state.database().relation("E").unwrap().is_empty());
        assert!(state.database().relation("T").unwrap().is_empty());
    }

    #[test]
    fn retract_missing_fact_is_a_noop() {
        let program = closure_program();
        let db = edge_facts(&[("a", "b")]);
        let engine = ChaseEngine::with_defaults();
        let mut state = ChaseState::new(&program, &db);
        engine.resume(&program, &mut state);
        let result = engine.retract(
            &program,
            &mut state,
            &db,
            &[("E".to_string(), Tuple::from_iter(["x", "y"]))],
            None,
        );
        assert_eq!(result.stats.requested, 1);
        assert_eq!(result.stats.retracted, 0);
        assert_eq!(result.stats.cascaded, 0);
        assert_eq!(state.database().relation("T").unwrap().len(), 1);
    }

    #[test]
    fn retract_condemns_existential_consequences_by_frontier_positions() {
        // Shifts(w, d, n, z) invents a null per (schedule, ward) pair; the
        // null position is existential, so the cascade must find the
        // consequence rows through their frontier-ground positions.
        let program =
            parse_program("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n")
                .unwrap();
        let db = hospital_db();
        let engine = ChaseEngine::with_defaults();
        let mut state = ChaseState::new(&program, &db);
        engine.resume(&program, &mut state);
        assert_eq!(state.database().relation("Shifts").unwrap().len(), 8);

        // Delete Cathy's Intensive schedule: exactly her W3 shift must go.
        let mut protected = db.clone();
        let cathy = Tuple::from_iter(["Intensive", "Sep/5", "Cathy", "cert"]);
        protected
            .relation_mut("WorkingSchedules")
            .unwrap()
            .delete(&cathy);
        let result = engine.retract(
            &program,
            &mut state,
            &protected,
            &[("WorkingSchedules".to_string(), cathy)],
            None,
        );
        assert_eq!(result.stats.retracted, 1);
        assert_eq!(result.stats.cascaded, 1);
        let shifts = state.database().relation("Shifts").unwrap();
        assert_eq!(shifts.len(), 7);
        assert!(!shifts
            .iter()
            .any(|t| t.get(2) == Some(&Value::str("Cathy"))));
        // Fresh-chase equivalence modulo null renaming: compare the
        // null-free projections.
        let fresh = chase(&program, &protected);
        let project = |db: &Database| -> HashSet<Tuple> {
            db.relation("Shifts")
                .map(|r| {
                    r.iter()
                        .map(|t| Tuple::new(t.values()[..3].to_vec()))
                        .collect()
                })
                .unwrap_or_default()
        };
        assert_eq!(project(state.database()), project(&fresh.database));
    }

    #[test]
    fn retract_with_support_graph_matches_evaluation_driven_cascade() {
        let program = closure_program();
        let db = edge_facts(&[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]);
        let engine = ChaseEngine::new(ChaseConfig {
            track_support: true,
            ..Default::default()
        });
        let protected = edge_facts(&[("b", "c"), ("a", "c"), ("c", "d")]);
        let requested = [("E".to_string(), Tuple::from_iter(["a", "b"]))];

        // Graph-driven path.
        let mut graph_state = ChaseState::new(&program, &db);
        let initial = engine.resume(&program, &mut graph_state);
        let graph = &initial.provenance.support;
        assert!(graph.is_enabled());
        assert!(!graph.is_empty());
        // T(a,c) is derived both from the direct edge and through b.
        assert_eq!(graph.support_count("T", &Tuple::from_iter(["a", "c"])), 2);
        let via_graph = engine.retract(
            &program,
            &mut graph_state,
            &protected,
            &requested,
            Some(graph),
        );
        assert_eq!(via_graph.stats.retracted, 1);

        // Evaluation-driven path.
        let mut eval_state = ChaseState::new(&program, &db);
        engine.resume(&program, &mut eval_state);
        engine.retract(&program, &mut eval_state, &protected, &requested, None);

        assert_eq!(
            relation_tuples(graph_state.database(), "T"),
            relation_tuples(eval_state.database(), "T"),
        );
        // Both equal the fresh chase of the surviving EDB.
        let fresh = chase(&program, &protected);
        assert_eq!(
            relation_tuples(graph_state.database(), "T"),
            relation_tuples(&fresh.database, "T"),
        );
    }

    #[test]
    fn retract_keeps_incremental_inserts_working_afterwards() {
        // Interleave: insert, chase, retract, insert again — the watermarks
        // must stay exact through the whole sequence.
        let program = closure_program();
        let engine = ChaseEngine::with_defaults();
        let mut state = ChaseState::new(&program, &edge_facts(&[("a", "b")]));
        engine.resume(&program, &mut state);
        state
            .insert_batch([("E".to_string(), Tuple::from_iter(["b", "c"]))])
            .unwrap();
        engine.resume(&program, &mut state);
        assert_eq!(state.database().relation("T").unwrap().len(), 3);

        let protected = edge_facts(&[("b", "c")]);
        engine.retract(
            &program,
            &mut state,
            &protected,
            &[("E".to_string(), Tuple::from_iter(["a", "b"]))],
            None,
        );
        assert_eq!(state.database().relation("T").unwrap().len(), 1);

        state
            .insert_batch([("E".to_string(), Tuple::from_iter(["c", "d"]))])
            .unwrap();
        engine.resume(&program, &mut state);
        let expected = chase(&program, &edge_facts(&[("b", "c"), ("c", "d")]));
        assert_eq!(
            relation_tuples(state.database(), "T"),
            relation_tuples(&expected.database, "T"),
        );
    }

    #[test]
    fn egds_read_relations_flags_only_body_predicates() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             y = z :- Pref(x, y), Pref(x, z).\n",
        )
        .unwrap();
        assert!(egds_read_relations(&program, ["Pref"]));
        assert!(!egds_read_relations(&program, ["E", "T"]));
        assert!(!egds_read_relations(&program, []));
    }

    #[test]
    fn demand_chase_never_checks_constraints() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             ! :- PatientUnit(u, d, p), not Unit(u).\n",
        )
        .unwrap();
        let query = query_body("PatientUnit(u, d, p).");
        let demanded = chase_on_demand(&program, &hospital_db(), &query);
        // The full chase would flag every generated unit; the demand path
        // answers the query without auditing.
        assert!(demanded.violations.is_empty());
        assert_eq!(demanded.termination, TerminationReason::Fixpoint);
    }

    /// A full rule plus an existential rule over the hospital fixture, so
    /// the profiler is exercised on both the staged and the fire-trigger
    /// paths.
    fn profiled_program() -> Program {
        parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap()
    }

    #[test]
    fn profile_counts_agree_with_stats_across_strategies() {
        let program = profiled_program();
        for config in strategies() {
            let result = ChaseEngine::new(config.clone()).run(&program, &hospital_db());
            let profile = &result.profile;
            assert!(profile.enabled, "profiling is on by default");
            assert_eq!(profile.rules.len(), program.tgds.len());
            let fires: u64 = profile.rules.iter().map(|r| r.fires).sum();
            let satisfied: u64 = profile.rules.iter().map(|r| r.satisfied).sum();
            let added: u64 = profile.rules.iter().map(|r| r.tuples_added).sum();
            assert_eq!(fires, result.stats.triggers_fired as u64, "{config:?}");
            assert_eq!(satisfied, result.stats.triggers_satisfied as u64);
            assert_eq!(added, result.stats.tuples_added as u64);
            // Every rule was evaluated at least once per executed round,
            // and each evaluation chose exactly one join kernel.
            for rule in &profile.rules {
                assert!(rule.evaluations >= 1);
                assert_eq!(rule.hash_evals + rule.wco_evals, rule.evaluations);
                assert!(!rule.label.is_empty());
            }
        }
    }

    #[test]
    fn profile_can_be_disabled() {
        let program = profiled_program();
        let config = ChaseConfig {
            profile: false,
            ..Default::default()
        };
        let result = ChaseEngine::new(config).run(&program, &hospital_db());
        assert!(!result.profile.enabled);
        assert!(result.profile.rules.is_empty());
        assert_eq!(result.profile.total_micros, 0);
    }

    #[test]
    fn profile_times_through_the_injected_clock() {
        // A frozen virtual clock forces every measured duration to zero —
        // the determinism contract the record/replay harness relies on.
        let program = profiled_program();
        let engine = ChaseEngine::with_defaults().with_clock(ontodq_obs::frozen());
        let result = engine.run(&program, &hospital_db());
        assert!(result.profile.enabled);
        assert_eq!(result.profile.total_micros, 0);
        assert_eq!(result.profile.join_micros(), 0);
        assert_eq!(result.profile.egd_micros, 0);
    }
}
