//! # ontodq-chase
//!
//! Chase engine and conjunctive-body evaluation for `ontodq`, the Rust
//! reproduction of *"Extending Contexts with Ontologies for Multidimensional
//! Data Quality Assessment"* (Milani, Bertossi, Ariyan; ICDE 2014).
//!
//! The chase is the paper's data-completion mechanism: dimensional rules
//! generate data by navigating up or down the dimension hierarchies, possibly
//! introducing labeled nulls; dimensional constraints (EGDs and negative
//! constraints) restrict the admissible instances.  This crate provides:
//!
//! * [`eval`] — evaluation of rule bodies / conjunctive queries over a
//!   [`ontodq_relational::Database`] (the reference semantics reused by the
//!   query-answering algorithms in `ontodq-qa`),
//! * [`mod@chase`] — the restricted and oblivious chase with EGD enforcement
//!   (null unification or hard violations) and negative-constraint checking,
//! * [`violation`] and [`provenance`] — structured reports of what the chase
//!   found and did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod chase;
pub mod eval;
pub mod par;
pub mod profile;
pub mod provenance;
pub mod violation;
pub mod wco;

pub use chase::{
    chase, chase_incremental, chase_naive, chase_on_demand, chase_parallel, egds_read_relations,
    ChaseConfig, ChaseEngine, ChaseMode, ChaseResult, ChaseState, EvalStrategy, RetractResult,
    RetractStats, TerminationReason,
};
pub use eval::{
    ensure_indexes, evaluate, evaluate_delta, evaluate_delta_with, evaluate_limited,
    evaluate_project, evaluate_with, has_extension, index_positions, is_satisfiable, plan_uses_wco,
    JoinEngine,
};
pub use par::parallel_map;
pub use profile::{ChaseProfile, DredTiming, RuleProfile};
pub use provenance::{ChaseStats, ChaseStep, Provenance, SupportGraph, TriggerRecord};
pub use violation::{EgdViolation, NcViolation, Violations};

#[cfg(test)]
mod proptests {
    use super::*;
    use ontodq_datalog::{parse_program, Program};
    use ontodq_relational::Database;
    use proptest::prelude::*;

    /// Generate a small random two-column EDB.
    fn arb_edges(max: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
        proptest::collection::vec((0u8..8, 0u8..8), 0..max)
    }

    fn edge_db(edges: &[(u8, u8)]) -> Database {
        let mut db = Database::new();
        for (a, b) in edges {
            db.insert_values("E", [format!("n{a}"), format!("n{b}")])
                .unwrap();
        }
        db
    }

    fn transitive_closure_program() -> Program {
        parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap()
    }

    proptest! {
        /// The chase of a weakly-acyclic (here: null-free) program always
        /// reaches a fixpoint, and chasing again adds nothing (idempotence).
        #[test]
        fn chase_of_full_programs_terminates_and_is_idempotent(edges in arb_edges(20)) {
            let program = transitive_closure_program();
            let db = edge_db(&edges);
            let first = chase(&program, &db);
            prop_assert_eq!(first.termination, TerminationReason::Fixpoint);
            let second = chase(&program, &first.database);
            prop_assert_eq!(second.stats.tuples_added, 0);
        }

        /// The chase result contains the input instance (monotonicity).
        #[test]
        fn chase_is_monotone_wrt_input(edges in arb_edges(20)) {
            let program = transitive_closure_program();
            let db = edge_db(&edges);
            let result = chase(&program, &db);
            if let Ok(original) = db.relation("E") {
                let chased = result.database.relation("E").unwrap();
                for tuple in original.iter() {
                    prop_assert!(chased.contains(&tuple));
                }
            }
        }

        /// Transitive closure computed by the chase agrees with a direct
        /// Floyd-Warshall-style closure.
        #[test]
        fn chase_transitive_closure_is_correct(edges in arb_edges(15)) {
            let program = transitive_closure_program();
            let db = edge_db(&edges);
            let result = chase(&program, &db);
            // Reference closure over the at-most-8 node ids.
            let mut reach = [[false; 8]; 8];
            for (a, b) in &edges {
                reach[*a as usize][*b as usize] = true;
            }
            for k in 0..8 {
                for i in 0..8 {
                    for j in 0..8 {
                        if reach[i][k] && reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            let t = result.database.relation("T").ok();
            let mut expected = 0usize;
            for (i, row) in reach.iter().enumerate() {
                for (j, reachable) in row.iter().enumerate() {
                    if *reachable {
                        expected += 1;
                        let tuple = ontodq_relational::Tuple::from_iter([
                            format!("n{i}"),
                            format!("n{j}"),
                        ]);
                        prop_assert!(t.map(|r| r.contains(&tuple)).unwrap_or(false));
                    }
                }
            }
            prop_assert_eq!(t.map(|r| r.len()).unwrap_or(0), expected);
        }

        /// Restricted and oblivious chase agree on null-free programs
        /// (up to set equality of the produced relations).
        #[test]
        fn restricted_and_oblivious_agree_without_existentials(edges in arb_edges(12)) {
            let program = transitive_closure_program();
            let db = edge_db(&edges);
            let restricted = chase(&program, &db);
            let oblivious = ChaseEngine::new(ChaseConfig {
                mode: ChaseMode::Oblivious,
                ..Default::default()
            })
            .run(&program, &db);
            let a = restricted.database.relation("T").map(|r| r.len()).unwrap_or(0);
            let b = oblivious.database.relation("T").map(|r| r.len()).unwrap_or(0);
            prop_assert_eq!(a, b);
        }
    }
}
