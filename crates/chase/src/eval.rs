//! Conjunctive-query evaluation over a database instance.
//!
//! Rule bodies (of TGDs, EGDs and negative constraints) and conjunctive
//! queries are conjunctions of relational atoms, negated atoms and built-in
//! comparisons.  Evaluation finds every [`Assignment`] of the variables to
//! database values under which all positive atoms are facts of the instance,
//! no negated atom is (an extension of the assignment to) a fact, and every
//! comparison holds.
//!
//! Two evaluation modes are provided:
//!
//! * [`evaluate`] joins over the **full** instance — the reference semantics
//!   that the chase's naive mode and the query-answering algorithms in
//!   `ontodq-qa` build on;
//! * [`evaluate_delta`] is the **semi-naive** mode: it only returns
//!   assignments in which at least one positive atom matches a row stamped
//!   *after* a given epoch (the delta).  It runs one rotated join per body
//!   position — position `i` restricted to the delta, positions before `i`
//!   restricted to the old rows, positions after `i` unrestricted — so each
//!   new trigger is discovered exactly once, through its first delta atom.
//!
//! Both modes share the same index-assisted nested-loop join with a greedy
//! "most-bound atom first" ordering; [`ensure_indexes`] lets callers build
//! the hash indexes a conjunction's join positions benefit from (the chase
//! engine does this for every rule body, and the indexes are then maintained
//! incrementally by `ontodq-relational` as the chase inserts).

use ontodq_datalog::{Assignment, Atom, Conjunction, Term};
use ontodq_relational::{Database, StampWindow, Value};

/// An atom together with the stamp window its tuples must come from.
#[derive(Debug, Clone, Copy)]
struct PlannedAtom<'a> {
    atom: &'a Atom,
    window: StampWindow,
}

impl<'a> PlannedAtom<'a> {
    fn unrestricted(atom: &'a Atom) -> Self {
        Self {
            atom,
            window: StampWindow::all(),
        }
    }
}

/// Evaluate a conjunction against a database, returning every satisfying
/// assignment (restricted to the conjunction's variables).
pub fn evaluate(db: &Database, conjunction: &Conjunction) -> Vec<Assignment> {
    let mut results = Vec::new();
    let mut order: Vec<PlannedAtom> = conjunction
        .atoms
        .iter()
        .map(PlannedAtom::unrestricted)
        .collect();
    // Greedy static ordering: atoms with more constants first (they are the
    // most selective with no bindings yet).
    order.sort_by_key(|p| std::cmp::Reverse(p.atom.constants().len()));
    join(db, &order, 0, Assignment::new(), &mut |assignment| {
        if satisfies_filters(db, conjunction, assignment) {
            results.push(assignment.clone());
        }
    });
    results
}

/// Semi-naive evaluation: every satisfying assignment in which at least one
/// positive atom matches a row stamped strictly after `floor`.
///
/// Runs `conjunction.atoms.len()` rotated joins.  In rotation `i`, atom `i`
/// draws from the delta (`stamp > floor`), atoms before `i` from the old
/// rows (`stamp <= floor`) and atoms after `i` from the whole relation, so
/// the rotations partition the new assignments: each is produced exactly
/// once, by the rotation of its first delta atom.  Negated atoms and
/// comparisons are checked against the full instance, exactly as in
/// [`evaluate`].
pub fn evaluate_delta(db: &Database, conjunction: &Conjunction, floor: u64) -> Vec<Assignment> {
    let mut results = Vec::new();
    let n = conjunction.atoms.len();
    for seed in 0..n {
        let mut order: Vec<PlannedAtom> = Vec::with_capacity(n);
        let mut rest: Vec<PlannedAtom> = Vec::with_capacity(n - 1);
        for (j, atom) in conjunction.atoms.iter().enumerate() {
            let window = match j.cmp(&seed) {
                std::cmp::Ordering::Less => StampWindow::old_up_to(floor),
                std::cmp::Ordering::Equal => StampWindow::delta_after(floor),
                std::cmp::Ordering::Greater => StampWindow::all(),
            };
            let planned = PlannedAtom { atom, window };
            if j == seed {
                order.push(planned);
            } else {
                rest.push(planned);
            }
        }
        // The delta atom leads (it is the most selective by construction);
        // the rest keep the greedy most-constants-first ordering.
        rest.sort_by_key(|p| std::cmp::Reverse(p.atom.constants().len()));
        order.extend(rest);
        join(db, &order, 0, Assignment::new(), &mut |assignment| {
            if satisfies_filters(db, conjunction, assignment) {
                results.push(assignment.clone());
            }
        });
    }
    results
}

/// Does the conjunction have at least one satisfying assignment?
pub fn is_satisfiable(db: &Database, conjunction: &Conjunction) -> bool {
    !evaluate_limited(db, conjunction, 1).is_empty()
}

/// Like [`evaluate`], but stops after `limit` assignments have been found.
pub fn evaluate_limited(db: &Database, conjunction: &Conjunction, limit: usize) -> Vec<Assignment> {
    let mut results = Vec::new();
    if limit == 0 {
        return results;
    }
    let mut order: Vec<PlannedAtom> = conjunction
        .atoms
        .iter()
        .map(PlannedAtom::unrestricted)
        .collect();
    order.sort_by_key(|p| std::cmp::Reverse(p.atom.constants().len()));
    join_limited(db, &order, 0, Assignment::new(), limit, &mut |assignment| {
        if satisfies_filters(db, conjunction, assignment) {
            results.push(assignment.clone());
        }
        results.len() >= limit
    });
    results
}

/// Extend `assignment` so that all of `atoms` are satisfied; calls `found`
/// for every complete extension.  Used both for body evaluation and for the
/// restricted chase's "head already satisfied" check.
pub fn extend_over_atoms(
    db: &Database,
    atoms: &[&Atom],
    assignment: Assignment,
    found: &mut dyn FnMut(&Assignment),
) {
    let order: Vec<PlannedAtom> = atoms.iter().map(|a| PlannedAtom::unrestricted(a)).collect();
    join(db, &order, 0, assignment, found);
}

/// Is there any extension of `assignment` satisfying all of `atoms`?
pub fn has_extension(db: &Database, atoms: &[&Atom], assignment: &Assignment) -> bool {
    let order: Vec<PlannedAtom> = atoms.iter().map(|a| PlannedAtom::unrestricted(a)).collect();
    let mut hit = false;
    join_limited(db, &order, 0, assignment.clone(), 1, &mut |_| {
        hit = true;
        true
    });
    hit
}

fn join(
    db: &Database,
    atoms: &[PlannedAtom],
    depth: usize,
    assignment: Assignment,
    found: &mut dyn FnMut(&Assignment),
) {
    join_limited(db, atoms, depth, assignment, usize::MAX, &mut |a| {
        found(a);
        false
    });
}

/// Core join loop.  `stop` returns `true` to abort the search early.
fn join_limited(
    db: &Database,
    atoms: &[PlannedAtom],
    depth: usize,
    assignment: Assignment,
    limit: usize,
    stop: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    if limit == 0 {
        return true;
    }
    if depth == atoms.len() {
        return stop(&assignment);
    }
    let planned = &atoms[depth];
    let atom = planned.atom;
    let relation = match db.relation(&atom.predicate) {
        Ok(r) => r,
        // Unknown predicates have empty extensions.
        Err(_) => return false,
    };
    if relation.schema().arity() != atom.arity() {
        return false;
    }
    // Bind as many positions as possible from constants and the current
    // assignment, then let the relation use an index if it has one.  Probe
    // values are borrowed straight from the atom and the assignment — no
    // key is rebuilt per probe.
    let mut bindings: Vec<(usize, &Value)> = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => bindings.push((i, v)),
            Term::Var(v) => {
                if let Some(value) = assignment.get(v) {
                    bindings.push((i, value));
                }
            }
        }
    }
    for tuple in relation.select_window(&bindings, planned.window) {
        if let Some(extended) = assignment.match_atom(atom, tuple) {
            if join_limited(db, atoms, depth + 1, extended, limit, stop) {
                return true;
            }
        }
    }
    false
}

/// Check the negated atoms and comparisons of a conjunction under a complete
/// assignment of its positive part.
fn satisfies_filters(db: &Database, conjunction: &Conjunction, assignment: &Assignment) -> bool {
    for cmp in &conjunction.comparisons {
        if !assignment.satisfies_comparison(cmp) {
            return false;
        }
    }
    for negated in &conjunction.negated {
        // The negated atom may still contain unbound variables; negation is
        // "no extension of the assignment makes it true" (safe negation when
        // the variables are bound by the positive part, negation-as-failure
        // with existential reading otherwise).
        if has_extension(db, &[negated], assignment) {
            return false;
        }
    }
    true
}

/// Evaluate a conjunction and project each satisfying assignment onto
/// `projection`, deduplicating the resulting tuples.
pub fn evaluate_project(
    db: &Database,
    conjunction: &Conjunction,
    projection: &[ontodq_datalog::Variable],
) -> Vec<ontodq_relational::Tuple> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for assignment in evaluate(db, conjunction) {
        if let Some(tuple) = assignment.project(projection) {
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
    }
    out
}

/// The `(relation, position)` pairs of a conjunction that an equality join
/// or a constant selection can probe: positions holding a constant, or a
/// variable that also occurs elsewhere in the conjunction's positive part.
pub fn index_positions(conjunction: &Conjunction) -> Vec<(String, usize)> {
    use std::collections::HashMap;
    let mut occurrences: HashMap<&str, usize> = HashMap::new();
    for atom in &conjunction.atoms {
        for term in &atom.terms {
            if let Term::Var(v) = term {
                *occurrences.entry(v.name()).or_default() += 1;
            }
        }
    }
    let mut out = Vec::new();
    for atom in &conjunction.atoms {
        for (position, term) in atom.terms.iter().enumerate() {
            let worth_indexing = match term {
                Term::Const(_) => true,
                Term::Var(v) => occurrences.get(v.name()).copied().unwrap_or(0) > 1,
            };
            if worth_indexing {
                out.push((atom.predicate.clone(), position));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Build the hash indexes [`index_positions`] suggests for `conjunction`,
/// skipping relations that do not exist (or whose arity disagrees) and
/// positions already indexed.  Indexes built here are maintained
/// incrementally by `ontodq-relational` on every subsequent insert, so the
/// chase pays the build cost once and keeps the lookup speed for the whole
/// run — and so does any query evaluated on the chased instance afterwards.
pub fn ensure_indexes(db: &mut Database, conjunction: &Conjunction) {
    for (predicate, position) in index_positions(conjunction) {
        if let Ok(relation) = db.relation_mut(&predicate) {
            if position < relation.schema().arity() && !relation.has_index(position) {
                relation.build_index(position);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_datalog::{CompareOp, Comparison, Variable};
    use ontodq_relational::Tuple;

    fn hospital_db() -> Database {
        let mut db = Database::new();
        for (u, w) in [
            ("Standard", "W1"),
            ("Standard", "W2"),
            ("Intensive", "W3"),
            ("Terminal", "W4"),
        ] {
            db.insert_values("UnitWard", [u, w]).unwrap();
        }
        for (w, d, p) in [
            ("W1", "Sep/5", "Tom Waits"),
            ("W1", "Sep/6", "Tom Waits"),
            ("W3", "Sep/7", "Tom Waits"),
            ("W2", "Sep/9", "Tom Waits"),
            ("W2", "Sep/6", "Lou Reed"),
            ("W1", "Sep/5", "Lou Reed"),
        ] {
            db.insert_values("PatientWard", [w, d, p]).unwrap();
        }
        db
    }

    #[test]
    fn single_atom_evaluation_binds_all_variables() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 4);
        assert!(results
            .iter()
            .all(|a| a.get(&Variable::new("u")).is_some() && a.get(&Variable::new("w")).is_some()));
    }

    #[test]
    fn join_across_two_atoms() {
        let db = hospital_db();
        // Which unit was each patient in on each day?  (The body of rule (7).)
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 6);
        // Tom Waits on Sep/7 was in ward W3, i.e. the Intensive unit.
        let tom_sep7: Vec<_> = results
            .iter()
            .filter(|a| {
                a.get(&Variable::new("p")) == Some(&Value::str("Tom Waits"))
                    && a.get(&Variable::new("d")) == Some(&Value::str("Sep/7"))
            })
            .collect();
        assert_eq!(tom_sep7.len(), 1);
        assert_eq!(
            tom_sep7[0].get(&Variable::new("u")),
            Some(&Value::str("Intensive"))
        );
    }

    #[test]
    fn constants_in_atoms_filter() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::new(
            "UnitWard",
            vec![Term::constant("Standard"), Term::var("w")],
        )]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn comparisons_filter_assignments() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])])
            .and_compare(Comparison::new(
                Term::var("p"),
                CompareOp::Eq,
                Term::constant("Lou Reed"),
            ));
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn negated_atoms_exclude_matches() {
        let mut db = hospital_db();
        db.insert_values("Closed", ["Intensive"]).unwrap();
        // Units that are not closed.
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])])
            .and_not(Atom::with_vars("Closed", &["u"]));
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 3);
        assert!(results
            .iter()
            .all(|a| a.get(&Variable::new("u")) != Some(&Value::str("Intensive"))));
    }

    #[test]
    fn negation_on_unknown_relation_is_vacuously_true() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])])
            .and_not(Atom::with_vars("DoesNotExist", &["u"]));
        assert_eq!(evaluate(&db, &conj).len(), 4);
    }

    #[test]
    fn unknown_positive_relation_has_empty_extension() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("Missing", &["x"])]);
        assert!(evaluate(&db, &conj).is_empty());
        assert!(!is_satisfiable(&db, &conj));
    }

    #[test]
    fn arity_mismatch_yields_no_answers() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w", "x"])]);
        assert!(evaluate(&db, &conj).is_empty());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        db.insert_values("E", ["a", "a"]).unwrap();
        db.insert_values("E", ["a", "b"]).unwrap();
        let conj = Conjunction::positive(vec![Atom::with_vars("E", &["x", "x"])]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get(&Variable::new("x")), Some(&Value::str("a")));
    }

    #[test]
    fn evaluate_limited_stops_early() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])]);
        assert_eq!(evaluate_limited(&db, &conj, 2).len(), 2);
        assert_eq!(evaluate_limited(&db, &conj, 0).len(), 0);
        assert!(is_satisfiable(&db, &conj));
    }

    #[test]
    fn evaluate_project_deduplicates() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])]);
        let patients = evaluate_project(&db, &conj, &[Variable::new("p")]);
        assert_eq!(patients.len(), 2);
        assert!(patients.contains(&Tuple::from_iter(["Tom Waits"])));
        assert!(patients.contains(&Tuple::from_iter(["Lou Reed"])));
    }

    #[test]
    fn has_extension_respects_partial_assignment() {
        let db = hospital_db();
        let atom = Atom::with_vars("UnitWard", &["u", "w"]);
        let mut assignment = Assignment::new();
        assignment.bind(Variable::new("u"), Value::str("Standard"));
        assert!(has_extension(&db, &[&atom], &assignment));
        let mut assignment2 = Assignment::new();
        assignment2.bind(Variable::new("u"), Value::str("Oncology"));
        assert!(!has_extension(&db, &[&atom], &assignment2));
    }

    #[test]
    fn indexes_do_not_change_results() {
        let mut db = hospital_db();
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ]);
        let before = evaluate(&db, &conj).len();
        db.relation_mut("UnitWard").unwrap().build_index(1);
        db.relation_mut("PatientWard").unwrap().build_index(0);
        let after = evaluate(&db, &conj).len();
        assert_eq!(before, after);
    }

    // ------------------------------------------------------------------
    // Semi-naive delta evaluation.
    // ------------------------------------------------------------------

    fn rule7_body() -> Conjunction {
        Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ])
    }

    #[test]
    fn delta_with_floor_before_everything_equals_full_evaluation() {
        let db = hospital_db();
        // All rows are stamped 0 and the floor is below them only when we
        // compare against an epoch that precedes every insert; since stamps
        // start at 0, evaluate_delta over a fresh database needs the
        // pre-insert watermark.  Advance the epoch and re-insert to get a
        // clean split instead.
        let full: std::collections::BTreeSet<String> = evaluate(&db, &rule7_body())
            .iter()
            .map(|a| a.to_string())
            .collect();
        let mut db2 = Database::new();
        db2.advance_epoch(); // existing rows stamped 1 > floor 0
        for rel in db.relations() {
            for t in rel.iter() {
                db2.insert(rel.name(), t.clone()).unwrap();
            }
        }
        let delta: std::collections::BTreeSet<String> = evaluate_delta(&db2, &rule7_body(), 0)
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(full, delta);
    }

    #[test]
    fn delta_after_current_epoch_is_empty() {
        let db = hospital_db();
        assert!(evaluate_delta(&db, &rule7_body(), db.epoch()).is_empty());
    }

    #[test]
    fn delta_finds_exactly_the_new_joins_exactly_once() {
        let mut db = hospital_db();
        let watermark = db.epoch();
        db.advance_epoch();
        // One new PatientWard row joins two existing UnitWard rows... no:
        // W1 belongs to exactly one unit, so one new trigger.
        db.insert_values("PatientWard", ["W1", "Sep/9", "Nick Cave"])
            .unwrap();
        // One new UnitWard row re-parents nothing (fresh ward) but pairs
        // with no PatientWard rows.
        db.insert_values("UnitWard", ["Oncology", "W9"]).unwrap();
        let delta = evaluate_delta(&db, &rule7_body(), watermark);
        assert_eq!(delta.len(), 1);
        assert_eq!(
            delta[0].get(&Variable::new("p")),
            Some(&Value::str("Nick Cave"))
        );
        // The full evaluation finds the old six plus the new one.
        assert_eq!(evaluate(&db, &rule7_body()).len(), 7);
    }

    #[test]
    fn delta_triggers_spanning_two_delta_atoms_are_not_duplicated() {
        let mut db = hospital_db();
        let watermark = db.epoch();
        db.advance_epoch();
        // Both atoms of the join are new: the trigger must appear exactly
        // once (found by the rotation of its first delta atom).
        db.insert_values("PatientWard", ["W9", "Sep/9", "Nick Cave"])
            .unwrap();
        db.insert_values("UnitWard", ["Oncology", "W9"]).unwrap();
        let delta = evaluate_delta(&db, &rule7_body(), watermark);
        let nicks: Vec<_> = delta
            .iter()
            .filter(|a| a.get(&Variable::new("p")) == Some(&Value::str("Nick Cave")))
            .collect();
        assert_eq!(nicks.len(), 1);
    }

    #[test]
    fn delta_agrees_with_full_evaluation_difference() {
        let mut db = hospital_db();
        let before: std::collections::BTreeSet<String> = evaluate(&db, &rule7_body())
            .iter()
            .map(|a| a.to_string())
            .collect();
        let watermark = db.epoch();
        db.advance_epoch();
        db.insert_values("PatientWard", ["W2", "Sep/7", "Nick Cave"])
            .unwrap();
        db.insert_values("UnitWard", ["Standard", "W5"]).unwrap();
        db.insert_values("PatientWard", ["W5", "Sep/8", "Nick Cave"])
            .unwrap();
        let after: std::collections::BTreeSet<String> = evaluate(&db, &rule7_body())
            .iter()
            .map(|a| a.to_string())
            .collect();
        let delta: std::collections::BTreeSet<String> =
            evaluate_delta(&db, &rule7_body(), watermark)
                .iter()
                .map(|a| a.to_string())
                .collect();
        let expected: std::collections::BTreeSet<String> =
            after.difference(&before).cloned().collect();
        assert_eq!(delta, expected);
    }

    #[test]
    fn delta_respects_comparison_filters() {
        let mut db = hospital_db();
        let watermark = db.epoch();
        db.advance_epoch();
        db.insert_values("PatientWard", ["W1", "Sep/9", "Nick Cave"])
            .unwrap();
        db.insert_values("PatientWard", ["W1", "Sep/9", "Lou Reed"])
            .unwrap();
        let conj = rule7_body().and_compare(Comparison::new(
            Term::var("p"),
            CompareOp::Eq,
            Term::constant("Nick Cave"),
        ));
        let delta = evaluate_delta(&db, &conj, watermark);
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn index_positions_cover_joins_and_constants() {
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::new("UnitWard", vec![Term::constant("Standard"), Term::var("w")]),
        ]);
        let positions = index_positions(&conj);
        // w joins PatientWard.0 with UnitWard.1; the constant sits at
        // UnitWard.0.  d and p occur once each → not indexed.
        assert!(positions.contains(&("PatientWard".to_string(), 0)));
        assert!(positions.contains(&("UnitWard".to_string(), 0)));
        assert!(positions.contains(&("UnitWard".to_string(), 1)));
        assert!(!positions.contains(&("PatientWard".to_string(), 1)));
        assert!(!positions.contains(&("PatientWard".to_string(), 2)));
    }

    #[test]
    fn ensure_indexes_builds_and_is_idempotent() {
        let mut db = hospital_db();
        let conj = rule7_body();
        ensure_indexes(&mut db, &conj);
        assert!(db.relation("PatientWard").unwrap().has_index(0));
        assert!(db.relation("UnitWard").unwrap().has_index(1));
        // Unknown predicates and repeat calls are fine.
        let with_missing = Conjunction::positive(vec![Atom::with_vars("Nope", &["x", "x"])]);
        ensure_indexes(&mut db, &with_missing);
        ensure_indexes(&mut db, &conj);
        // Results are unchanged by the indexes.
        assert_eq!(evaluate(&db, &conj).len(), 6);
    }
}
