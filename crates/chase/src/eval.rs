//! Conjunctive-query evaluation over a database instance.
//!
//! Rule bodies (of TGDs, EGDs and negative constraints) and conjunctive
//! queries are conjunctions of relational atoms, negated atoms and built-in
//! comparisons.  Evaluation finds every [`Assignment`] of the variables to
//! database values under which all positive atoms are facts of the instance,
//! no negated atom is (an extension of the assignment to) a fact, and every
//! comparison holds.
//!
//! The evaluator is a straightforward index-assisted nested-loop join with a
//! greedy "most-bound atom first" ordering — adequate for the instance sizes
//! the paper's scenarios produce, and deliberately simple so that its results
//! can serve as the reference semantics for the fancier query-answering
//! algorithms in `ontodq-qa`.

use ontodq_datalog::{Assignment, Atom, Conjunction, Term};
use ontodq_relational::{Database, Value};

/// Evaluate a conjunction against a database, returning every satisfying
/// assignment (restricted to the conjunction's variables).
pub fn evaluate(db: &Database, conjunction: &Conjunction) -> Vec<Assignment> {
    let mut results = Vec::new();
    let mut order: Vec<&Atom> = conjunction.atoms.iter().collect();
    // Greedy static ordering: atoms with more constants first (they are the
    // most selective with no bindings yet).
    order.sort_by_key(|a| std::cmp::Reverse(a.constants().len()));
    join(db, &order, 0, Assignment::new(), &mut |assignment| {
        if satisfies_filters(db, conjunction, &assignment) {
            results.push(assignment.clone());
        }
    });
    results
}

/// Does the conjunction have at least one satisfying assignment?
pub fn is_satisfiable(db: &Database, conjunction: &Conjunction) -> bool {
    !evaluate_limited(db, conjunction, 1).is_empty()
}

/// Like [`evaluate`], but stops after `limit` assignments have been found.
pub fn evaluate_limited(
    db: &Database,
    conjunction: &Conjunction,
    limit: usize,
) -> Vec<Assignment> {
    let mut results = Vec::new();
    if limit == 0 {
        return results;
    }
    let mut order: Vec<&Atom> = conjunction.atoms.iter().collect();
    order.sort_by_key(|a| std::cmp::Reverse(a.constants().len()));
    join_limited(db, &order, 0, Assignment::new(), limit, &mut |assignment| {
        if satisfies_filters(db, conjunction, &assignment) {
            results.push(assignment.clone());
        }
        results.len() >= limit
    });
    results
}

/// Extend `assignment` so that all of `atoms` are satisfied; calls `found`
/// for every complete extension.  Used both for body evaluation and for the
/// restricted chase's "head already satisfied" check.
pub fn extend_over_atoms(
    db: &Database,
    atoms: &[&Atom],
    assignment: Assignment,
    found: &mut dyn FnMut(&Assignment),
) {
    join(db, atoms, 0, assignment, found);
}

/// Is there any extension of `assignment` satisfying all of `atoms`?
pub fn has_extension(db: &Database, atoms: &[&Atom], assignment: &Assignment) -> bool {
    let mut hit = false;
    join_limited(db, atoms, 0, assignment.clone(), 1, &mut |_| {
        hit = true;
        true
    });
    hit
}

fn join(
    db: &Database,
    atoms: &[&Atom],
    depth: usize,
    assignment: Assignment,
    found: &mut dyn FnMut(&Assignment),
) {
    join_limited(db, atoms, depth, assignment, usize::MAX, &mut |a| {
        found(a);
        false
    });
}

/// Core join loop.  `stop` returns `true` to abort the search early.
fn join_limited(
    db: &Database,
    atoms: &[&Atom],
    depth: usize,
    assignment: Assignment,
    limit: usize,
    stop: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    if limit == 0 {
        return true;
    }
    if depth == atoms.len() {
        return stop(&assignment);
    }
    let atom = atoms[depth];
    let relation = match db.relation(&atom.predicate) {
        Ok(r) => r,
        // Unknown predicates have empty extensions.
        Err(_) => return false,
    };
    if relation.schema().arity() != atom.arity() {
        return false;
    }
    // Bind as many positions as possible from constants and the current
    // assignment, then let the relation use an index if it has one.
    let mut bindings: Vec<(usize, Value)> = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => bindings.push((i, v.clone())),
            Term::Var(v) => {
                if let Some(value) = assignment.get(v) {
                    bindings.push((i, value.clone()));
                }
            }
        }
    }
    for tuple in relation.select(&bindings) {
        if let Some(extended) = assignment.match_atom(atom, tuple) {
            if join_limited(db, atoms, depth + 1, extended, limit, stop) {
                return true;
            }
        }
    }
    false
}

/// Check the negated atoms and comparisons of a conjunction under a complete
/// assignment of its positive part.
fn satisfies_filters(db: &Database, conjunction: &Conjunction, assignment: &Assignment) -> bool {
    for cmp in &conjunction.comparisons {
        if !assignment.satisfies_comparison(cmp) {
            return false;
        }
    }
    for negated in &conjunction.negated {
        // The negated atom may still contain unbound variables; negation is
        // "no extension of the assignment makes it true" (safe negation when
        // the variables are bound by the positive part, negation-as-failure
        // with existential reading otherwise).
        if has_extension(db, &[negated], assignment) {
            return false;
        }
    }
    true
}

/// Evaluate a conjunction and project each satisfying assignment onto
/// `projection`, deduplicating the resulting tuples.
pub fn evaluate_project(
    db: &Database,
    conjunction: &Conjunction,
    projection: &[ontodq_datalog::Variable],
) -> Vec<ontodq_relational::Tuple> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for assignment in evaluate(db, conjunction) {
        if let Some(tuple) = assignment.project(projection) {
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_datalog::{CompareOp, Comparison, Variable};
    use ontodq_relational::Tuple;

    fn hospital_db() -> Database {
        let mut db = Database::new();
        for (u, w) in [
            ("Standard", "W1"),
            ("Standard", "W2"),
            ("Intensive", "W3"),
            ("Terminal", "W4"),
        ] {
            db.insert_values("UnitWard", [u, w]).unwrap();
        }
        for (w, d, p) in [
            ("W1", "Sep/5", "Tom Waits"),
            ("W1", "Sep/6", "Tom Waits"),
            ("W3", "Sep/7", "Tom Waits"),
            ("W2", "Sep/9", "Tom Waits"),
            ("W2", "Sep/6", "Lou Reed"),
            ("W1", "Sep/5", "Lou Reed"),
        ] {
            db.insert_values("PatientWard", [w, d, p]).unwrap();
        }
        db
    }

    #[test]
    fn single_atom_evaluation_binds_all_variables() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 4);
        assert!(results
            .iter()
            .all(|a| a.get(&Variable::new("u")).is_some() && a.get(&Variable::new("w")).is_some()));
    }

    #[test]
    fn join_across_two_atoms() {
        let db = hospital_db();
        // Which unit was each patient in on each day?  (The body of rule (7).)
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 6);
        // Tom Waits on Sep/7 was in ward W3, i.e. the Intensive unit.
        let tom_sep7: Vec<_> = results
            .iter()
            .filter(|a| {
                a.get(&Variable::new("p")) == Some(&Value::str("Tom Waits"))
                    && a.get(&Variable::new("d")) == Some(&Value::str("Sep/7"))
            })
            .collect();
        assert_eq!(tom_sep7.len(), 1);
        assert_eq!(
            tom_sep7[0].get(&Variable::new("u")),
            Some(&Value::str("Intensive"))
        );
    }

    #[test]
    fn constants_in_atoms_filter() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::new(
            "UnitWard",
            vec![Term::constant("Standard"), Term::var("w")],
        )]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn comparisons_filter_assignments() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])])
            .and_compare(Comparison::new(
                Term::var("p"),
                CompareOp::Eq,
                Term::constant("Lou Reed"),
            ));
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn negated_atoms_exclude_matches() {
        let mut db = hospital_db();
        db.insert_values("Closed", ["Intensive"]).unwrap();
        // Units that are not closed.
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])])
            .and_not(Atom::with_vars("Closed", &["u"]));
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 3);
        assert!(results
            .iter()
            .all(|a| a.get(&Variable::new("u")) != Some(&Value::str("Intensive"))));
    }

    #[test]
    fn negation_on_unknown_relation_is_vacuously_true() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])])
            .and_not(Atom::with_vars("DoesNotExist", &["u"]));
        assert_eq!(evaluate(&db, &conj).len(), 4);
    }

    #[test]
    fn unknown_positive_relation_has_empty_extension() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("Missing", &["x"])]);
        assert!(evaluate(&db, &conj).is_empty());
        assert!(!is_satisfiable(&db, &conj));
    }

    #[test]
    fn arity_mismatch_yields_no_answers() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w", "x"])]);
        assert!(evaluate(&db, &conj).is_empty());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        db.insert_values("E", ["a", "a"]).unwrap();
        db.insert_values("E", ["a", "b"]).unwrap();
        let conj = Conjunction::positive(vec![Atom::with_vars("E", &["x", "x"])]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get(&Variable::new("x")),
            Some(&Value::str("a"))
        );
    }

    #[test]
    fn evaluate_limited_stops_early() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])]);
        assert_eq!(evaluate_limited(&db, &conj, 2).len(), 2);
        assert_eq!(evaluate_limited(&db, &conj, 0).len(), 0);
        assert!(is_satisfiable(&db, &conj));
    }

    #[test]
    fn evaluate_project_deduplicates() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])]);
        let patients = evaluate_project(&db, &conj, &[Variable::new("p")]);
        assert_eq!(patients.len(), 2);
        assert!(patients.contains(&Tuple::from_iter(["Tom Waits"])));
        assert!(patients.contains(&Tuple::from_iter(["Lou Reed"])));
    }

    #[test]
    fn has_extension_respects_partial_assignment() {
        let db = hospital_db();
        let atom = Atom::with_vars("UnitWard", &["u", "w"]);
        let mut assignment = Assignment::new();
        assignment.bind(Variable::new("u"), Value::str("Standard"));
        assert!(has_extension(&db, &[&atom], &assignment));
        let mut assignment2 = Assignment::new();
        assignment2.bind(Variable::new("u"), Value::str("Oncology"));
        assert!(!has_extension(&db, &[&atom], &assignment2));
    }

    #[test]
    fn indexes_do_not_change_results() {
        let mut db = hospital_db();
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ]);
        let before = evaluate(&db, &conj).len();
        db.relation_mut("UnitWard").unwrap().build_index(1);
        db.relation_mut("PatientWard").unwrap().build_index(0);
        let after = evaluate(&db, &conj).len();
        assert_eq!(before, after);
    }
}
