//! Conjunctive-query evaluation over a database instance.
//!
//! Rule bodies (of TGDs, EGDs and negative constraints) and conjunctive
//! queries are conjunctions of relational atoms, negated atoms and built-in
//! comparisons.  Evaluation finds every [`Assignment`] of the variables to
//! database values under which all positive atoms are facts of the instance,
//! no negated atom is (an extension of the assignment to) a fact, and every
//! comparison holds.
//!
//! Two evaluation modes are provided:
//!
//! * [`evaluate`] joins over the **full** instance — the reference semantics
//!   that the chase's naive mode and the query-answering algorithms in
//!   `ontodq-qa` build on;
//! * [`evaluate_delta`] is the **semi-naive** mode: it only returns
//!   assignments in which at least one positive atom matches a row stamped
//!   *after* a given epoch (the delta).  It runs one rotated join per body
//!   position — position `i` restricted to the delta, positions before `i`
//!   restricted to the old rows, positions after `i` unrestricted — so each
//!   new trigger is discovered exactly once, through its first delta atom.
//!
//! # Join engines
//!
//! Both modes run over the columnar arena of `ontodq-relational` and never
//! materialize tuples: atoms are resolved to their relations once per join,
//! probes return **row ids** into reusable buffers
//! ([`RelationInstance::select_ids_into`]), matched values are read straight
//! out of the columns, and variable bindings live on a mark/rewind
//! `Binder` stack — an [`Assignment`] is only built at the leaves.  Two
//! join kernels share that substrate, selected per conjunction by
//! [`JoinEngine`]:
//!
//! * the **hash path**: an index-assisted nested-loop join with a greedy
//!   "most-bound atom first" ordering — optimal for the short, selective
//!   bodies that dominate chase rule sets;
//! * the **worst-case-optimal path** (see [`crate::wco`]): a
//!   leapfrog-style variable-at-a-time join picked by [`plan_uses_wco`]
//!   when a body has ≥ 3 atoms sharing variables, the regime (triangles,
//!   skewed multi-way joins) where any atom-at-a-time plan can blow up on
//!   intermediate results.
//!
//! [`ensure_indexes`] lets callers build the hash indexes a conjunction's
//! join positions benefit from (the chase engine does this for every rule
//! body, and the indexes are then maintained incrementally by
//! `ontodq-relational` as the chase inserts).
//!
//! [`RelationInstance::select_ids_into`]: ontodq_relational::RelationInstance::select_ids_into

use ontodq_datalog::{Assignment, Atom, Comparison, Conjunction, Term, Variable};
use ontodq_relational::{Database, RelationInstance, StampWindow, Value};

/// Which join kernel evaluates a conjunction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JoinEngine {
    /// Choose per conjunction: the worst-case-optimal path when the body
    /// has ≥ 3 atoms sharing variables ([`plan_uses_wco`]), the hash path
    /// otherwise.
    #[default]
    Auto,
    /// Always the index-assisted nested-loop (binary hash) join.
    Hash,
    /// Always the worst-case-optimal (leapfrog-style) join; conjunctions
    /// with fewer than two atoms fall back to the hash path, which is
    /// identical there.
    Leapfrog,
}

/// Does `engine` evaluate `conjunction` on the worst-case-optimal path?
///
/// The `Auto` heuristic: at least three positive atoms each sharing a
/// variable with some other atom.  Binary join plans on such bodies can
/// produce intermediate results asymptotically larger than the output
/// (the triangle query is the canonical case); bodies below the threshold
/// are small enough that the hash path's per-atom index probes win.
pub fn plan_uses_wco(conjunction: &Conjunction, engine: JoinEngine) -> bool {
    match engine {
        JoinEngine::Hash => false,
        JoinEngine::Leapfrog => conjunction.atoms.len() >= 2,
        JoinEngine::Auto => {
            if conjunction.atoms.len() < 3 {
                return false;
            }
            let var_sets: Vec<Vec<Variable>> =
                conjunction.atoms.iter().map(|a| a.variables()).collect();
            let sharing = var_sets
                .iter()
                .enumerate()
                .filter(|(i, vars)| {
                    vars.iter().any(|v| {
                        var_sets
                            .iter()
                            .enumerate()
                            .any(|(j, other)| j != *i && other.contains(v))
                    })
                })
                .count();
            sharing >= 3
        }
    }
}

/// An atom together with the stamp window its tuples must come from.
#[derive(Debug, Clone, Copy)]
struct PlannedAtom<'a> {
    atom: &'a Atom,
    window: StampWindow,
}

impl<'a> PlannedAtom<'a> {
    fn unrestricted(atom: &'a Atom) -> Self {
        Self {
            atom,
            window: StampWindow::all(),
        }
    }
}

/// An atom resolved against the database: the relation looked up **once**
/// per join (not once per recursion step), with the arity checked up front.
pub(crate) struct ResolvedAtom<'a> {
    pub(crate) atom: &'a Atom,
    pub(crate) relation: &'a RelationInstance,
    pub(crate) window: StampWindow,
}

/// Resolve all planned atoms, or `None` when some atom's relation is
/// missing or of the wrong arity — its extension is empty, so the whole
/// conjunction has no satisfying assignments.
fn resolve<'a>(db: &'a Database, planned: &[PlannedAtom<'a>]) -> Option<Vec<ResolvedAtom<'a>>> {
    let mut out = Vec::with_capacity(planned.len());
    for p in planned {
        let relation = db.relation(&p.atom.predicate).ok()?;
        if relation.schema().arity() != p.atom.arity() {
            return None;
        }
        out.push(ResolvedAtom {
            atom: p.atom,
            relation,
            window: p.window,
        });
    }
    Some(out)
}

/// A mark/rewind stack of variable bindings — the join's working state.
///
/// Entries are unsorted (push order); rule bodies bind a handful of
/// variables, so lookup is a short scan and backtracking is a truncate.
/// Unlike [`Assignment`] (which the old engine cloned once per candidate
/// row), the binder is mutated in place along the whole join — assignments
/// are materialized only at the leaves via [`Binder::to_assignment`].
#[derive(Debug, Default)]
pub(crate) struct Binder {
    entries: Vec<(Variable, Value)>,
}

impl Binder {
    pub(crate) fn from_assignment(seed: &Assignment) -> Self {
        Self {
            entries: seed.iter().map(|(v, val)| (*v, *val)).collect(),
        }
    }

    #[inline]
    pub(crate) fn get(&self, var: &Variable) -> Option<Value> {
        self.entries
            .iter()
            .find(|(v, _)| v == var)
            .map(|(_, val)| *val)
    }

    #[inline]
    pub(crate) fn mark(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub(crate) fn truncate(&mut self, mark: usize) {
        self.entries.truncate(mark);
    }

    #[inline]
    pub(crate) fn push(&mut self, var: Variable, value: Value) {
        self.entries.push((var, value));
    }

    pub(crate) fn to_assignment(&self) -> Assignment {
        let mut a = Assignment::new();
        for (var, value) in &self.entries {
            a.bind(*var, *value);
        }
        a
    }
}

/// Per-depth scratch buffers of the hash join, reused across every row and
/// every probe at that depth — the recursion allocates nothing per row.
#[derive(Debug, Default)]
struct Level {
    /// Candidate row ids of the current probe.
    ids: Vec<u32>,
    /// Positions bound by constants or already-bound variables.
    bound: Vec<(usize, Value)>,
    /// Positions holding variables unbound at depth entry, in term order
    /// (a repeated variable appears once per position; the second
    /// occurrence finds the first's binding on the stack and becomes an
    /// equality check).
    actions: Vec<(usize, Variable)>,
}

/// Evaluate a conjunction against a database, returning every satisfying
/// assignment (restricted to the conjunction's variables).
pub fn evaluate(db: &Database, conjunction: &Conjunction) -> Vec<Assignment> {
    evaluate_with(db, conjunction, JoinEngine::Auto)
}

/// [`evaluate`] with an explicit join-engine choice.
pub fn evaluate_with(
    db: &Database,
    conjunction: &Conjunction,
    engine: JoinEngine,
) -> Vec<Assignment> {
    let mut results = Vec::new();
    for_each_trigger(db, conjunction, None, engine, &mut |binder| {
        results.push(binder.to_assignment());
        false
    });
    results
}

/// Semi-naive evaluation: every satisfying assignment in which at least one
/// positive atom matches a row stamped strictly after `floor`.
///
/// Runs `conjunction.atoms.len()` rotated joins.  In rotation `i`, atom `i`
/// draws from the delta (`stamp > floor`), atoms before `i` from the old
/// rows (`stamp <= floor`) and atoms after `i` from the whole relation, so
/// the rotations partition the new assignments: each is produced exactly
/// once, by the rotation of its first delta atom.  Negated atoms and
/// comparisons are checked against the full instance, exactly as in
/// [`evaluate`].
pub fn evaluate_delta(db: &Database, conjunction: &Conjunction, floor: u64) -> Vec<Assignment> {
    evaluate_delta_with(db, conjunction, floor, JoinEngine::Auto)
}

/// [`evaluate_delta`] with an explicit join-engine choice.
pub fn evaluate_delta_with(
    db: &Database,
    conjunction: &Conjunction,
    floor: u64,
    engine: JoinEngine,
) -> Vec<Assignment> {
    let mut results = Vec::new();
    for_each_trigger(db, conjunction, Some(floor), engine, &mut |binder| {
        results.push(binder.to_assignment());
        false
    });
    results
}

/// Run the full (`floor: None`) or semi-naive delta (`floor: Some`)
/// evaluation of a conjunction, calling `emit` with the binder holding each
/// satisfying assignment instead of materializing [`Assignment`]s.
///
/// This is the chase's hot entry point: the binder's entries are the
/// complete bindings of the conjunction's variables, readable in place, so
/// a caller that only needs a few values per trigger (grounding a full
/// TGD's head, say) allocates nothing per row.  `emit` returns `true` to
/// abort the search.
pub(crate) fn for_each_trigger(
    db: &Database,
    conjunction: &Conjunction,
    floor: Option<u64>,
    engine: JoinEngine,
    emit: &mut dyn FnMut(&mut Binder) -> bool,
) {
    let Some(floor) = floor else {
        let planned: Vec<PlannedAtom> = conjunction
            .atoms
            .iter()
            .map(PlannedAtom::unrestricted)
            .collect();
        run_join(db, conjunction, planned, engine, emit);
        return;
    };
    let n = conjunction.atoms.len();
    for seed in 0..n {
        let mut order: Vec<PlannedAtom> = Vec::with_capacity(n);
        let mut rest: Vec<PlannedAtom> = Vec::with_capacity(n - 1);
        for (j, atom) in conjunction.atoms.iter().enumerate() {
            let window = match j.cmp(&seed) {
                std::cmp::Ordering::Less => StampWindow::old_up_to(floor),
                std::cmp::Ordering::Equal => StampWindow::delta_after(floor),
                std::cmp::Ordering::Greater => StampWindow::all(),
            };
            let planned = PlannedAtom { atom, window };
            if j == seed {
                order.push(planned);
            } else {
                rest.push(planned);
            }
        }
        // The delta atom leads (it is the most selective by construction);
        // the rest keep the greedy most-constants-first ordering.
        rest.sort_by_key(|p| std::cmp::Reverse(p.atom.constants().len()));
        order.extend(rest);
        run_join(db, conjunction, order, engine, emit);
    }
}

/// Dispatch a planned conjunction to the chosen join kernel, filtering each
/// complete assignment through the negated atoms and comparisons before
/// handing it to `emit` (which returns `true` to abort the search).
fn run_join(
    db: &Database,
    conjunction: &Conjunction,
    mut planned: Vec<PlannedAtom>,
    engine: JoinEngine,
    emit: &mut dyn FnMut(&mut Binder) -> bool,
) {
    let use_wco = plan_uses_wco(conjunction, engine);
    if !use_wco {
        // Greedy static ordering for the nested-loop path: atoms with more
        // constants first (most selective with no bindings yet).  Delta
        // rotations pre-order with the delta atom leading; their first atom
        // is pinned by construction (`sort` above already handled the
        // rest), so only re-sort when every window is unrestricted.
        if planned.iter().all(|p| p.window.is_all()) {
            planned.sort_by_key(|p| std::cmp::Reverse(p.atom.constants().len()));
        }
    }
    let resolved = match resolve(db, &planned) {
        Some(r) => r,
        None => return,
    };
    let mut binder = Binder::default();
    // The filter path allocates nothing per row: comparisons are evaluated
    // straight off the binder stack, and each negated atom is resolved once
    // per join and probed through the nested-loop kernel with a persistent
    // scratch level (the probe rewinds the binder, so the shared stack is
    // safe).  A negated atom that fails to resolve has an empty extension —
    // its negation holds vacuously.
    let negated: Vec<Option<Vec<ResolvedAtom>>> = conjunction
        .negated
        .iter()
        .map(|atom| resolve(db, &[PlannedAtom::unrestricted(atom)]))
        .collect();
    let mut negated_scratch: Vec<Level> = (0..negated.len()).map(|_| Level::default()).collect();
    let mut leaf = |binder: &mut Binder| -> bool {
        for cmp in &conjunction.comparisons {
            if !binder_satisfies_comparison(binder, cmp) {
                return false;
            }
        }
        for (atoms, scratch) in negated.iter().zip(negated_scratch.iter_mut()) {
            if let Some(atoms) = atoms {
                if hash_join(atoms, 0, binder, std::slice::from_mut(scratch), &mut |_| {
                    true
                }) {
                    return false;
                }
            }
        }
        emit(binder)
    };
    if use_wco {
        crate::wco::wco_join(&resolved, &mut binder, &mut leaf);
    } else {
        let mut scratch: Vec<Level> = (0..resolved.len()).map(|_| Level::default()).collect();
        hash_join(&resolved, 0, &mut binder, &mut scratch, &mut leaf);
    }
}

/// Does the conjunction have at least one satisfying assignment?
pub fn is_satisfiable(db: &Database, conjunction: &Conjunction) -> bool {
    !evaluate_limited(db, conjunction, 1).is_empty()
}

/// Like [`evaluate`], but stops after `limit` assignments have been found.
/// Always the hash path: early-exit workloads want the first answer fast,
/// not a worst-case-optimal enumeration of all of them.
pub fn evaluate_limited(db: &Database, conjunction: &Conjunction, limit: usize) -> Vec<Assignment> {
    let mut results = Vec::new();
    if limit == 0 {
        return results;
    }
    let planned: Vec<PlannedAtom> = conjunction
        .atoms
        .iter()
        .map(PlannedAtom::unrestricted)
        .collect();
    run_join(db, conjunction, planned, JoinEngine::Hash, &mut |binder| {
        results.push(binder.to_assignment());
        results.len() >= limit
    });
    results
}

/// Extend `assignment` so that all of `atoms` are satisfied; calls `found`
/// for every complete extension.  Used both for body evaluation and for the
/// restricted chase's "head already satisfied" check.
pub fn extend_over_atoms(
    db: &Database,
    atoms: &[&Atom],
    assignment: Assignment,
    found: &mut dyn FnMut(&Assignment),
) {
    let planned: Vec<PlannedAtom> = atoms.iter().map(|a| PlannedAtom::unrestricted(a)).collect();
    let resolved = match resolve(db, &planned) {
        Some(r) => r,
        None => return,
    };
    let mut binder = Binder::from_assignment(&assignment);
    let mut scratch: Vec<Level> = (0..resolved.len()).map(|_| Level::default()).collect();
    hash_join(&resolved, 0, &mut binder, &mut scratch, &mut |binder| {
        found(&binder.to_assignment());
        false
    });
}

/// Is there any extension of `assignment` satisfying all of `atoms`?
pub fn has_extension(db: &Database, atoms: &[&Atom], assignment: &Assignment) -> bool {
    let planned: Vec<PlannedAtom> = atoms.iter().map(|a| PlannedAtom::unrestricted(a)).collect();
    let resolved = match resolve(db, &planned) {
        Some(r) => r,
        None => return false,
    };
    let mut binder = Binder::from_assignment(assignment);
    let mut scratch: Vec<Level> = (0..resolved.len()).map(|_| Level::default()).collect();
    hash_join(&resolved, 0, &mut binder, &mut scratch, &mut |_| true)
}

/// The nested-loop kernel: at each depth, probe the current atom's relation
/// for candidate row ids under the bindings accumulated so far, then walk
/// the candidates binding the atom's free variables from the columns.
///
/// `stop` runs at the leaves and returns `true` to abort the whole search
/// (used by limits and existence checks).  Returns whether the search was
/// aborted.  The binder is always rewound to its entry state on return.
fn hash_join(
    atoms: &[ResolvedAtom],
    depth: usize,
    binder: &mut Binder,
    scratch: &mut [Level],
    stop: &mut dyn FnMut(&mut Binder) -> bool,
) -> bool {
    if depth == atoms.len() {
        return stop(binder);
    }
    let ra = &atoms[depth];
    // Take this depth's scratch out so the recursion can borrow the rest.
    let mut level = std::mem::take(&mut scratch[depth]);
    level.ids.clear();
    level.bound.clear();
    level.actions.clear();
    for (i, term) in ra.atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => level.bound.push((i, *v)),
            Term::Var(v) => match binder.get(v) {
                Some(value) => level.bound.push((i, value)),
                None => level.actions.push((i, *v)),
            },
        }
    }
    ra.relation
        .select_ids_into(&level.bound, ra.window, &mut level.ids);
    let mut aborted = false;
    'rows: for &row in &level.ids {
        let mark = binder.mark();
        for &(pos, var) in &level.actions {
            let value = ra
                .relation
                .value_at(row, pos)
                .copied()
                .expect("arity checked");
            match binder.get(&var) {
                // A repeated variable: its first occurrence in this very
                // row bound it; later occurrences must agree.
                Some(bound) => {
                    if bound != value {
                        binder.truncate(mark);
                        continue 'rows;
                    }
                }
                None => binder.push(var, value),
            }
        }
        let hit = hash_join(atoms, depth + 1, binder, scratch, stop);
        binder.truncate(mark);
        if hit {
            aborted = true;
            break;
        }
    }
    scratch[depth] = level;
    aborted
}

/// The value a term takes under the binder's current bindings.
#[inline]
fn binder_term_value(binder: &Binder, term: &Term) -> Option<Value> {
    match term {
        Term::Const(v) => Some(*v),
        Term::Var(v) => binder.get(v),
    }
}

/// [`Assignment::satisfies_comparison`] evaluated on the binder stack —
/// unbound operands fail the comparison, matching the assignment semantics.
fn binder_satisfies_comparison(binder: &Binder, cmp: &Comparison) -> bool {
    match (
        binder_term_value(binder, &cmp.left),
        binder_term_value(binder, &cmp.right),
    ) {
        (Some(left), Some(right)) => cmp.op.eval(&left, &right).unwrap_or(false),
        _ => false,
    }
}

/// Evaluate a conjunction and project each satisfying assignment onto
/// `projection`, deduplicating the resulting tuples.
pub fn evaluate_project(
    db: &Database,
    conjunction: &Conjunction,
    projection: &[ontodq_datalog::Variable],
) -> Vec<ontodq_relational::Tuple> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for assignment in evaluate(db, conjunction) {
        if let Some(tuple) = assignment.project(projection) {
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
    }
    out
}

/// The `(relation, position)` pairs of a conjunction that an equality join
/// or a constant selection can probe: positions holding a constant, or a
/// variable that also occurs elsewhere in the conjunction's positive part.
pub fn index_positions(conjunction: &Conjunction) -> Vec<(String, usize)> {
    use std::collections::HashMap;
    let mut occurrences: HashMap<&str, usize> = HashMap::new();
    // Negated atoms join too: each is probed once per satisfying assignment
    // of the positive part, with the shared variables bound — without an
    // index that existence probe degenerates to a relation scan per row.
    let all_atoms = || conjunction.atoms.iter().chain(conjunction.negated.iter());
    for atom in all_atoms() {
        for term in &atom.terms {
            if let Term::Var(v) = term {
                *occurrences.entry(v.name()).or_default() += 1;
            }
        }
    }
    let mut out = Vec::new();
    for atom in all_atoms() {
        for (position, term) in atom.terms.iter().enumerate() {
            let worth_indexing = match term {
                Term::Const(_) => true,
                Term::Var(v) => occurrences.get(v.name()).copied().unwrap_or(0) > 1,
            };
            if worth_indexing {
                out.push((atom.predicate.clone(), position));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Build the hash indexes [`index_positions`] suggests for `conjunction`,
/// skipping relations that do not exist (or whose arity disagrees) and
/// positions already indexed.  Indexes built here are maintained
/// incrementally by `ontodq-relational` on every subsequent insert, so the
/// chase pays the build cost once and keeps the lookup speed for the whole
/// run — and so does any query evaluated on the chased instance afterwards.
/// Both join kernels exploit them: the hash path for its probes, the
/// worst-case-optimal path for postings-list intersections.
pub fn ensure_indexes(db: &mut Database, conjunction: &Conjunction) {
    for (predicate, position) in index_positions(conjunction) {
        if let Ok(relation) = db.relation_mut(&predicate) {
            if position < relation.schema().arity() && !relation.has_index(position) {
                relation.build_index(position);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_datalog::{CompareOp, Comparison, Variable};
    use ontodq_relational::Tuple;

    fn hospital_db() -> Database {
        let mut db = Database::new();
        for (u, w) in [
            ("Standard", "W1"),
            ("Standard", "W2"),
            ("Intensive", "W3"),
            ("Terminal", "W4"),
        ] {
            db.insert_values("UnitWard", [u, w]).unwrap();
        }
        for (w, d, p) in [
            ("W1", "Sep/5", "Tom Waits"),
            ("W1", "Sep/6", "Tom Waits"),
            ("W3", "Sep/7", "Tom Waits"),
            ("W2", "Sep/9", "Tom Waits"),
            ("W2", "Sep/6", "Lou Reed"),
            ("W1", "Sep/5", "Lou Reed"),
        ] {
            db.insert_values("PatientWard", [w, d, p]).unwrap();
        }
        db
    }

    #[test]
    fn single_atom_evaluation_binds_all_variables() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 4);
        assert!(results
            .iter()
            .all(|a| a.get(&Variable::new("u")).is_some() && a.get(&Variable::new("w")).is_some()));
    }

    #[test]
    fn join_across_two_atoms() {
        let db = hospital_db();
        // Which unit was each patient in on each day?  (The body of rule (7).)
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 6);
        // Tom Waits on Sep/7 was in ward W3, i.e. the Intensive unit.
        let tom_sep7: Vec<_> = results
            .iter()
            .filter(|a| {
                a.get(&Variable::new("p")) == Some(&Value::str("Tom Waits"))
                    && a.get(&Variable::new("d")) == Some(&Value::str("Sep/7"))
            })
            .collect();
        assert_eq!(tom_sep7.len(), 1);
        assert_eq!(
            tom_sep7[0].get(&Variable::new("u")),
            Some(&Value::str("Intensive"))
        );
    }

    #[test]
    fn constants_in_atoms_filter() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::new(
            "UnitWard",
            vec![Term::constant("Standard"), Term::var("w")],
        )]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn comparisons_filter_assignments() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])])
            .and_compare(Comparison::new(
                Term::var("p"),
                CompareOp::Eq,
                Term::constant("Lou Reed"),
            ));
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn negated_atoms_exclude_matches() {
        let mut db = hospital_db();
        db.insert_values("Closed", ["Intensive"]).unwrap();
        // Units that are not closed.
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])])
            .and_not(Atom::with_vars("Closed", &["u"]));
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 3);
        assert!(results
            .iter()
            .all(|a| a.get(&Variable::new("u")) != Some(&Value::str("Intensive"))));
    }

    #[test]
    fn negation_on_unknown_relation_is_vacuously_true() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w"])])
            .and_not(Atom::with_vars("DoesNotExist", &["u"]));
        assert_eq!(evaluate(&db, &conj).len(), 4);
    }

    #[test]
    fn unknown_positive_relation_has_empty_extension() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("Missing", &["x"])]);
        assert!(evaluate(&db, &conj).is_empty());
        assert!(!is_satisfiable(&db, &conj));
    }

    #[test]
    fn arity_mismatch_yields_no_answers() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("UnitWard", &["u", "w", "x"])]);
        assert!(evaluate(&db, &conj).is_empty());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        db.insert_values("E", ["a", "a"]).unwrap();
        db.insert_values("E", ["a", "b"]).unwrap();
        let conj = Conjunction::positive(vec![Atom::with_vars("E", &["x", "x"])]);
        let results = evaluate(&db, &conj);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get(&Variable::new("x")), Some(&Value::str("a")));
    }

    #[test]
    fn evaluate_limited_stops_early() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])]);
        assert_eq!(evaluate_limited(&db, &conj, 2).len(), 2);
        assert_eq!(evaluate_limited(&db, &conj, 0).len(), 0);
        assert!(is_satisfiable(&db, &conj));
    }

    #[test]
    fn evaluate_project_deduplicates() {
        let db = hospital_db();
        let conj = Conjunction::positive(vec![Atom::with_vars("PatientWard", &["w", "d", "p"])]);
        let patients = evaluate_project(&db, &conj, &[Variable::new("p")]);
        assert_eq!(patients.len(), 2);
        assert!(patients.contains(&Tuple::from_iter(["Tom Waits"])));
        assert!(patients.contains(&Tuple::from_iter(["Lou Reed"])));
    }

    #[test]
    fn has_extension_respects_partial_assignment() {
        let db = hospital_db();
        let atom = Atom::with_vars("UnitWard", &["u", "w"]);
        let mut assignment = Assignment::new();
        assignment.bind(Variable::new("u"), Value::str("Standard"));
        assert!(has_extension(&db, &[&atom], &assignment));
        let mut assignment2 = Assignment::new();
        assignment2.bind(Variable::new("u"), Value::str("Oncology"));
        assert!(!has_extension(&db, &[&atom], &assignment2));
    }

    #[test]
    fn indexes_do_not_change_results() {
        let mut db = hospital_db();
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ]);
        let before = evaluate(&db, &conj).len();
        db.relation_mut("UnitWard").unwrap().build_index(1);
        db.relation_mut("PatientWard").unwrap().build_index(0);
        let after = evaluate(&db, &conj).len();
        assert_eq!(before, after);
    }

    // ------------------------------------------------------------------
    // Join-engine selection and hash/leapfrog agreement.
    // ------------------------------------------------------------------

    fn triangle_db() -> Database {
        let mut db = Database::new();
        // A small triangle pattern with one dead end.
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "d")] {
            db.insert_values("R", [a, b]).unwrap();
        }
        for (a, b) in [("b", "c"), ("c", "a"), ("d", "b")] {
            db.insert_values("S", [a, b]).unwrap();
        }
        for (a, b) in [("c", "a"), ("b", "a")] {
            db.insert_values("T", [a, b]).unwrap();
        }
        db
    }

    fn triangle_body() -> Conjunction {
        Conjunction::positive(vec![
            Atom::with_vars("R", &["x", "y"]),
            Atom::with_vars("S", &["y", "z"]),
            Atom::with_vars("T", &["z", "x"]),
        ])
    }

    #[test]
    fn planner_picks_wco_for_shared_triple_joins_only() {
        assert!(plan_uses_wco(&triangle_body(), JoinEngine::Auto));
        assert!(!plan_uses_wco(&triangle_body(), JoinEngine::Hash));
        assert!(plan_uses_wco(&triangle_body(), JoinEngine::Leapfrog));
        // Two atoms: below the Auto threshold.
        let two = Conjunction::positive(vec![
            Atom::with_vars("R", &["x", "y"]),
            Atom::with_vars("S", &["y", "z"]),
        ]);
        assert!(!plan_uses_wco(&two, JoinEngine::Auto));
        assert!(plan_uses_wco(&two, JoinEngine::Leapfrog));
        // Three atoms but a cartesian product (no shared variables): hash.
        let cartesian = Conjunction::positive(vec![
            Atom::with_vars("R", &["a", "b"]),
            Atom::with_vars("S", &["c", "d"]),
            Atom::with_vars("T", &["e", "f"]),
        ]);
        assert!(!plan_uses_wco(&cartesian, JoinEngine::Auto));
    }

    fn as_set(results: &[Assignment]) -> std::collections::BTreeSet<String> {
        results.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn hash_and_leapfrog_agree_on_triangles() {
        let db = triangle_db();
        let conj = triangle_body();
        let hash = evaluate_with(&db, &conj, JoinEngine::Hash);
        let wco = evaluate_with(&db, &conj, JoinEngine::Leapfrog);
        assert_eq!(as_set(&hash), as_set(&wco));
        // The triangle a→b→c→a must be found by both.
        assert!(!hash.is_empty());
        // Auto picks WCO here and must agree too.
        let auto = evaluate(&db, &conj);
        assert_eq!(as_set(&hash), as_set(&auto));
    }

    #[test]
    fn hash_and_leapfrog_agree_with_indexes_constants_and_filters() {
        let mut db = triangle_db();
        ensure_indexes(&mut db, &triangle_body());
        let conj = Conjunction::positive(vec![
            Atom::with_vars("R", &["x", "y"]),
            Atom::with_vars("S", &["y", "z"]),
            Atom::new("T", vec![Term::var("z"), Term::constant("a")]),
        ])
        .and_compare(Comparison::new(
            Term::var("x"),
            CompareOp::Eq,
            Term::constant("a"),
        ));
        let hash = evaluate_with(&db, &conj, JoinEngine::Hash);
        let wco = evaluate_with(&db, &conj, JoinEngine::Leapfrog);
        assert_eq!(as_set(&hash), as_set(&wco));
    }

    #[test]
    fn leapfrog_handles_repeated_variables_and_dead_ends() {
        let mut db = Database::new();
        db.insert_values("E", ["a", "a"]).unwrap();
        db.insert_values("E", ["a", "b"]).unwrap();
        db.insert_values("F", ["a"]).unwrap();
        let conj = Conjunction::positive(vec![
            Atom::with_vars("E", &["x", "x"]),
            Atom::with_vars("F", &["x"]),
        ]);
        let hash = evaluate_with(&db, &conj, JoinEngine::Hash);
        let wco = evaluate_with(&db, &conj, JoinEngine::Leapfrog);
        assert_eq!(as_set(&hash), as_set(&wco));
        assert_eq!(wco.len(), 1);
    }

    #[test]
    fn delta_rotations_agree_across_engines() {
        let mut db = triangle_db();
        let watermark = db.epoch();
        db.advance_epoch();
        db.insert_values("R", ["c", "b"]).unwrap();
        db.insert_values("T", ["a", "c"]).unwrap();
        let conj = triangle_body();
        let hash = evaluate_delta_with(&db, &conj, watermark, JoinEngine::Hash);
        let wco = evaluate_delta_with(&db, &conj, watermark, JoinEngine::Leapfrog);
        assert_eq!(as_set(&hash), as_set(&wco));
        // And the delta is exactly the full-evaluation difference.
        let full_now = as_set(&evaluate_with(&db, &conj, JoinEngine::Hash));
        let mut db_old = triangle_db();
        ensure_indexes(&mut db_old, &conj);
        let full_old = as_set(&evaluate_with(&db_old, &conj, JoinEngine::Hash));
        let expected: std::collections::BTreeSet<String> =
            full_now.difference(&full_old).cloned().collect();
        assert_eq!(as_set(&hash), expected);
    }

    // ------------------------------------------------------------------
    // Semi-naive delta evaluation.
    // ------------------------------------------------------------------

    fn rule7_body() -> Conjunction {
        Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ])
    }

    #[test]
    fn delta_with_floor_before_everything_equals_full_evaluation() {
        let db = hospital_db();
        // All rows are stamped 0 and the floor is below them only when we
        // compare against an epoch that precedes every insert; since stamps
        // start at 0, evaluate_delta over a fresh database needs the
        // pre-insert watermark.  Advance the epoch and re-insert to get a
        // clean split instead.
        let full: std::collections::BTreeSet<String> = evaluate(&db, &rule7_body())
            .iter()
            .map(|a| a.to_string())
            .collect();
        let mut db2 = Database::new();
        db2.advance_epoch(); // existing rows stamped 1 > floor 0
        for rel in db.relations() {
            for t in rel.iter() {
                db2.insert(rel.name(), t).unwrap();
            }
        }
        let delta: std::collections::BTreeSet<String> = evaluate_delta(&db2, &rule7_body(), 0)
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(full, delta);
    }

    #[test]
    fn delta_after_current_epoch_is_empty() {
        let db = hospital_db();
        assert!(evaluate_delta(&db, &rule7_body(), db.epoch()).is_empty());
    }

    #[test]
    fn delta_finds_exactly_the_new_joins_exactly_once() {
        let mut db = hospital_db();
        let watermark = db.epoch();
        db.advance_epoch();
        // One new PatientWard row joins two existing UnitWard rows... no:
        // W1 belongs to exactly one unit, so one new trigger.
        db.insert_values("PatientWard", ["W1", "Sep/9", "Nick Cave"])
            .unwrap();
        // One new UnitWard row re-parents nothing (fresh ward) but pairs
        // with no PatientWard rows.
        db.insert_values("UnitWard", ["Oncology", "W9"]).unwrap();
        let delta = evaluate_delta(&db, &rule7_body(), watermark);
        assert_eq!(delta.len(), 1);
        assert_eq!(
            delta[0].get(&Variable::new("p")),
            Some(&Value::str("Nick Cave"))
        );
        // The full evaluation finds the old six plus the new one.
        assert_eq!(evaluate(&db, &rule7_body()).len(), 7);
    }

    #[test]
    fn delta_triggers_spanning_two_delta_atoms_are_not_duplicated() {
        let mut db = hospital_db();
        let watermark = db.epoch();
        db.advance_epoch();
        // Both atoms of the join are new: the trigger must appear exactly
        // once (found by the rotation of its first delta atom).
        db.insert_values("PatientWard", ["W9", "Sep/9", "Nick Cave"])
            .unwrap();
        db.insert_values("UnitWard", ["Oncology", "W9"]).unwrap();
        let delta = evaluate_delta(&db, &rule7_body(), watermark);
        let nicks: Vec<_> = delta
            .iter()
            .filter(|a| a.get(&Variable::new("p")) == Some(&Value::str("Nick Cave")))
            .collect();
        assert_eq!(nicks.len(), 1);
    }

    #[test]
    fn delta_agrees_with_full_evaluation_difference() {
        let mut db = hospital_db();
        let before: std::collections::BTreeSet<String> = evaluate(&db, &rule7_body())
            .iter()
            .map(|a| a.to_string())
            .collect();
        let watermark = db.epoch();
        db.advance_epoch();
        db.insert_values("PatientWard", ["W2", "Sep/7", "Nick Cave"])
            .unwrap();
        db.insert_values("UnitWard", ["Standard", "W5"]).unwrap();
        db.insert_values("PatientWard", ["W5", "Sep/8", "Nick Cave"])
            .unwrap();
        let after: std::collections::BTreeSet<String> = evaluate(&db, &rule7_body())
            .iter()
            .map(|a| a.to_string())
            .collect();
        let delta: std::collections::BTreeSet<String> =
            evaluate_delta(&db, &rule7_body(), watermark)
                .iter()
                .map(|a| a.to_string())
                .collect();
        let expected: std::collections::BTreeSet<String> =
            after.difference(&before).cloned().collect();
        assert_eq!(delta, expected);
    }

    #[test]
    fn delta_respects_comparison_filters() {
        let mut db = hospital_db();
        let watermark = db.epoch();
        db.advance_epoch();
        db.insert_values("PatientWard", ["W1", "Sep/9", "Nick Cave"])
            .unwrap();
        db.insert_values("PatientWard", ["W1", "Sep/9", "Lou Reed"])
            .unwrap();
        let conj = rule7_body().and_compare(Comparison::new(
            Term::var("p"),
            CompareOp::Eq,
            Term::constant("Nick Cave"),
        ));
        let delta = evaluate_delta(&db, &conj, watermark);
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn index_positions_cover_joins_and_constants() {
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::new("UnitWard", vec![Term::constant("Standard"), Term::var("w")]),
        ]);
        let positions = index_positions(&conj);
        // w joins PatientWard.0 with UnitWard.1; the constant sits at
        // UnitWard.0.  d and p occur once each → not indexed.
        assert!(positions.contains(&("PatientWard".to_string(), 0)));
        assert!(positions.contains(&("UnitWard".to_string(), 0)));
        assert!(positions.contains(&("UnitWard".to_string(), 1)));
        assert!(!positions.contains(&("PatientWard".to_string(), 1)));
        assert!(!positions.contains(&("PatientWard".to_string(), 2)));
    }

    #[test]
    fn ensure_indexes_builds_and_is_idempotent() {
        let mut db = hospital_db();
        let conj = rule7_body();
        ensure_indexes(&mut db, &conj);
        assert!(db.relation("PatientWard").unwrap().has_index(0));
        assert!(db.relation("UnitWard").unwrap().has_index(1));
        // Unknown predicates and repeat calls are fine.
        let with_missing = Conjunction::positive(vec![Atom::with_vars("Nope", &["x", "x"])]);
        ensure_indexes(&mut db, &with_missing);
        ensure_indexes(&mut db, &conj);
        // Results are unchanged by the indexes.
        assert_eq!(evaluate(&db, &conj).len(), 6);
    }
}
