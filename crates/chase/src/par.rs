//! A scoped fork-join pool for per-rule parallel evaluation.
//!
//! `ontodq-server` already runs a fixed [`std::thread`] + `mpsc` worker pool
//! for `'static` query jobs; the chase needs the same fan-out shape but over
//! *borrowed* data — a round's delta-joins all read the same `&Database`
//! snapshot.  [`parallel_map`] generalizes the pool pattern to scoped
//! borrows: a team of `std::thread::scope` workers drains an atomic work
//! queue and writes each item's result into its slot, so the output order is
//! the input order regardless of which worker ran what — callers get
//! deterministic merges for free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item of `items`, running up to `threads` workers, and
/// return the results in input order.
///
/// * `threads <= 1` (or a single item) runs inline on the caller's thread —
///   no spawn cost for the sequential case.
/// * Workers claim items through an atomic cursor, so uneven per-item cost
///   balances itself.
/// * `f` must be `Sync` (shared by the workers) and may freely borrow from
///   the caller's scope — this is the point of scoped threads.
///
/// A panic in `f` propagates to the caller after the scope joins, like the
/// sequential loop would.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = f(index, item);
                // Each slot is written exactly once (the cursor hands every
                // index to one worker), so the lock is uncontended.
                *slots[index].lock().expect("result slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every index was claimed and computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(4, &items, |_, &x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items = vec![1, 2, 3];
        let out = parallel_map(1, &items, |i, &x| (i, x));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7], |_, &x| x), vec![7]);
    }

    #[test]
    fn borrows_from_the_caller_scope() {
        let base = String::from("shared");
        let items = vec![1usize, 2, 3, 4];
        let out = parallel_map(2, &items, |_, &x| format!("{base}-{x}"));
        assert_eq!(out, vec!["shared-1", "shared-2", "shared-3", "shared-4"]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![10, 20];
        let out = parallel_map(16, &items, |_, &x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(4, &items, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, items);
    }
}
