//! Constraint violations observed during the chase or during consistency
//! checking.

use ontodq_datalog::Assignment;
use ontodq_relational::Value;
use std::fmt;

/// A violation of an equality-generating dependency: the body matched and the
/// two equated terms evaluate to distinct constants, which no null
/// unification can repair.
#[derive(Debug, Clone, PartialEq)]
pub struct EgdViolation {
    /// Index of the EGD in the program.
    pub egd_index: usize,
    /// Optional label of the EGD.
    pub label: Option<String>,
    /// Value of the left-hand head variable.
    pub left: Value,
    /// Value of the right-hand head variable.
    pub right: Value,
    /// The body assignment that witnessed the violation.
    pub witness: Assignment,
}

impl fmt::Display for EgdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self
            .label
            .clone()
            .unwrap_or_else(|| format!("egd#{}", self.egd_index));
        write!(
            f,
            "EGD {label} violated: {} ≠ {} under {}",
            self.left, self.right, self.witness
        )
    }
}

/// A violation of a negative constraint: its body is satisfied.
#[derive(Debug, Clone, PartialEq)]
pub struct NcViolation {
    /// Index of the constraint in the program.
    pub constraint_index: usize,
    /// Optional label of the constraint.
    pub label: Option<String>,
    /// The body assignment that witnessed the violation.
    pub witness: Assignment,
}

impl fmt::Display for NcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self
            .label
            .clone()
            .unwrap_or_else(|| format!("nc#{}", self.constraint_index));
        write!(f, "constraint {label} violated under {}", self.witness)
    }
}

/// All violations observed in one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Violations {
    /// Hard EGD violations.
    pub egd: Vec<EgdViolation>,
    /// Negative-constraint violations.
    pub nc: Vec<NcViolation>,
}

impl Violations {
    /// `true` when no violation of either kind was observed.
    pub fn is_empty(&self) -> bool {
        self.egd.is_empty() && self.nc.is_empty()
    }

    /// Total number of violations.
    pub fn len(&self) -> usize {
        self.egd.len() + self.nc.len()
    }
}

impl fmt::Display for Violations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.egd {
            writeln!(f, "{v}")?;
        }
        for v in &self.nc {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_datalog::Variable;

    #[test]
    fn empty_and_len() {
        let mut v = Violations::default();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        v.nc.push(NcViolation {
            constraint_index: 0,
            label: None,
            witness: Assignment::new(),
        });
        assert!(!v.is_empty());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn displays_mention_labels_and_fallbacks() {
        let mut witness = Assignment::new();
        witness.bind(Variable::new("w"), Value::str("W3"));
        let egd = EgdViolation {
            egd_index: 2,
            label: None,
            left: Value::str("B1"),
            right: Value::str("B2"),
            witness: witness.clone(),
        };
        assert!(egd.to_string().contains("egd#2"));
        assert!(egd.to_string().contains("B1"));

        let nc = NcViolation {
            constraint_index: 1,
            label: Some("no-intensive-after-aug-2005".into()),
            witness,
        };
        assert!(nc.to_string().contains("no-intensive-after-aug-2005"));
        assert!(nc.to_string().contains("W3"));

        let all = Violations {
            egd: vec![egd],
            nc: vec![nc],
        };
        assert_eq!(all.to_string().lines().count(), 2);
    }
}
