//! Worst-case-optimal (leapfrog-style) join over the columnar arena.
//!
//! The hash path in [`crate::eval`] joins **atom at a time**: pick the next
//! atom, enumerate its matching rows, recurse.  On cyclic or skewed bodies —
//! the triangle `R(x,y), S(y,z), T(z,x)` is the canonical case — any such
//! plan can generate intermediate results asymptotically larger than the
//! final output (`R ⋈ S` may be quadratic while the triangle count is not).
//! Worst-case-optimal joins avoid this by going **variable at a time**
//! (Ngo–Porat–Ré–Rudra; Veldhuizen's leapfrog triejoin is the classic
//! implementation): fix a global variable order, and for each variable
//! intersect the candidate values *across every atom containing it* before
//! moving on.  The work is then bounded by the AGM bound of the query, not
//! by the worst intermediate join.
//!
//! This implementation trades leapfrog's sorted-trie iterators for the
//! structures the arena already maintains:
//!
//! * each atom holds a **candidate set** of row ids — initially its stamp
//!   window (a contiguous id range) restricted by the atom's constants;
//! * binding a variable `v` to a value restricts the candidates of every
//!   atom containing `v`: through a sorted-postings intersection (galloping,
//!   [`intersect_sorted`]) when the position is hash-indexed, or a column
//!   filter otherwise — correctness never depends on an index being
//!   present;
//! * the candidate **values** for `v` are enumerated from the atom with the
//!   fewest candidate rows, in ascending row-id order of first occurrence,
//!   which makes the enumeration deterministic.
//!
//! Every restriction counts one *WCO seek* in the process-wide
//! [`ontodq_relational::counters`], surfaced by the server's
//! `!stats` and the join bench.

use crate::eval::{Binder, ResolvedAtom};
use ontodq_datalog::{Term, Variable};
use ontodq_relational::{counters, intersect_sorted, FxHashSet, Value};

/// A per-atom candidate set of row ids, always sorted ascending.
enum Cand {
    /// A contiguous id range `[lo, hi)` — the initial stamp window.
    Range(u32, u32),
    /// An explicit sorted id list, produced by restrictions.
    Ids(Vec<u32>),
}

impl Cand {
    fn len(&self) -> usize {
        match self {
            Cand::Range(lo, hi) => (hi - lo) as usize,
            Cand::Ids(ids) => ids.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn for_each(&self, f: &mut impl FnMut(u32)) {
        match self {
            Cand::Range(lo, hi) => (*lo..*hi).for_each(f),
            Cand::Ids(ids) => ids.iter().copied().for_each(f),
        }
    }
}

/// One variable of the join, with the atoms (and positions) it occurs in.
struct VarPlan {
    var: Variable,
    /// `(atom index, positions of the variable in that atom)`.
    occurrences: Vec<(usize, Vec<usize>)>,
}

/// Run the worst-case-optimal join over `atoms`, calling `stop` (on the
/// binder holding a complete assignment) at every leaf; `stop` returns
/// `true` to abort the search.  Returns whether the search was aborted.
///
/// Variables already bound in `binder` are treated as constants.  The
/// variable order puts join variables first — descending number of atoms
/// containing them, ties broken by first occurrence — so the tightest
/// intersections happen at the top of the search tree; solo variables
/// follow in occurrence order.
pub(crate) fn wco_join(
    atoms: &[ResolvedAtom],
    binder: &mut Binder,
    stop: &mut dyn FnMut(&mut Binder) -> bool,
) -> bool {
    // Initial candidates: the atom's stamp window restricted by constants
    // and pre-bound variables.
    let mut cands: Vec<Cand> = Vec::with_capacity(atoms.len());
    let mut bound: Vec<(usize, Value)> = Vec::new();
    for ra in atoms {
        bound.clear();
        for (i, term) in ra.atom.terms.iter().enumerate() {
            match term {
                Term::Const(v) => bound.push((i, *v)),
                Term::Var(v) => {
                    if let Some(value) = binder.get(v) {
                        bound.push((i, value));
                    }
                }
            }
        }
        let cand = if bound.is_empty() {
            let range = ra.relation.window_range(ra.window);
            Cand::Range(range.start, range.end)
        } else {
            let mut ids = Vec::new();
            ra.relation.select_ids_into(&bound, ra.window, &mut ids);
            Cand::Ids(ids)
        };
        if cand.is_empty() {
            return false;
        }
        cands.push(cand);
    }

    // The global variable order.
    let mut plans: Vec<VarPlan> = Vec::new();
    for (a, ra) in atoms.iter().enumerate() {
        for (i, term) in ra.atom.terms.iter().enumerate() {
            let Term::Var(v) = term else { continue };
            if binder.get(v).is_some() {
                continue;
            }
            match plans.iter_mut().find(|p| p.var == *v) {
                Some(plan) => match plan.occurrences.iter_mut().find(|(ai, _)| *ai == a) {
                    Some((_, positions)) => positions.push(i),
                    None => plan.occurrences.push((a, vec![i])),
                },
                None => plans.push(VarPlan {
                    var: *v,
                    occurrences: vec![(a, vec![i])],
                }),
            }
        }
    }
    // Stable sort: join variables (≥ 2 atoms) before solo ones, wider
    // fan-in first; first-occurrence order breaks ties deterministically.
    plans.sort_by_key(|p| std::cmp::Reverse(p.occurrences.len()));

    enumerate(atoms, &plans, 0, &mut cands, binder, stop)
}

/// Bind the `vi`-th variable of the order to each of its candidate values
/// in turn, restricting every atom containing it, and recurse.
fn enumerate(
    atoms: &[ResolvedAtom],
    plans: &[VarPlan],
    vi: usize,
    cands: &mut Vec<Cand>,
    binder: &mut Binder,
    stop: &mut dyn FnMut(&mut Binder) -> bool,
) -> bool {
    let Some(plan) = plans.get(vi) else {
        return stop(binder);
    };
    // Enumerate candidate values from the occurrence with the fewest
    // candidate rows.
    let (seed_atom, seed_positions) = plan
        .occurrences
        .iter()
        .min_by_key(|(a, _)| cands[*a].len())
        .expect("a variable occurs somewhere");
    let seed_pos = seed_positions[0];
    let mut values: Vec<Value> = Vec::new();
    let mut seen: FxHashSet<Value> = FxHashSet::default();
    let column = atoms[*seed_atom]
        .relation
        .column(seed_pos)
        .expect("arity checked");
    cands[*seed_atom].for_each(&mut |row| {
        let value = column[row as usize];
        if seen.insert(value) {
            values.push(value);
        }
    });

    let mut aborted = false;
    'values: for value in values {
        // Restrict every atom containing the variable; remember the
        // replaced candidate sets so the branch can be undone.
        let mut undo: Vec<(usize, Cand)> = Vec::with_capacity(plan.occurrences.len());
        let mut dead_end = false;
        for (a, positions) in &plan.occurrences {
            let restricted = restrict(&atoms[*a], &cands[*a], positions, value);
            let empty = restricted.is_empty();
            undo.push((*a, std::mem::replace(&mut cands[*a], restricted)));
            if empty {
                dead_end = true;
                break;
            }
        }
        if !dead_end {
            let mark = binder.mark();
            binder.push(plan.var, value);
            let hit = enumerate(atoms, plans, vi + 1, cands, binder, stop);
            binder.truncate(mark);
            aborted = hit;
        }
        for (a, saved) in undo.into_iter().rev() {
            cands[a] = saved;
        }
        if aborted {
            break 'values;
        }
    }
    aborted
}

/// Restrict `cand` to the rows of `atom` whose value at every position in
/// `positions` equals `value`.  Uses the hash index's sorted postings when
/// one exists on the first position (clamped/intersected by galloping);
/// falls back to a column filter otherwise.
fn restrict(ra: &ResolvedAtom, cand: &Cand, positions: &[usize], value: Value) -> Cand {
    counters::record_wco_seek();
    let first = positions[0];
    let mut ids: Vec<u32> = match (ra.relation.index(first), cand) {
        (Some(index), Cand::Range(lo, hi)) => {
            let postings = index.lookup(&value);
            let start = postings.partition_point(|&r| r < *lo);
            let end = postings.partition_point(|&r| r < *hi);
            postings[start..end].to_vec()
        }
        (Some(index), Cand::Ids(cand_ids)) => {
            let mut out = Vec::new();
            intersect_sorted(index.lookup(&value), cand_ids, &mut out);
            out
        }
        (None, _) => {
            let column = ra.relation.column(first).expect("arity checked");
            let mut out = Vec::new();
            cand.for_each(&mut |row| {
                if column[row as usize] == value {
                    out.push(row);
                }
            });
            out
        }
    };
    // A variable repeated within the atom: every other position must hold
    // the same value.
    for &pos in &positions[1..] {
        let column = ra.relation.column(pos).expect("arity checked");
        ids.retain(|&row| column[row as usize] == value);
    }
    Cand::Ids(ids)
}
