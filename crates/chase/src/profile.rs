//! Per-rule chase profiling: where the chase actually spends its time.
//!
//! [`ChaseProfile`] is collected by every driver strategy when
//! [`ChaseConfig::profile`](crate::ChaseConfig::profile) is on (the
//! default) and carried on [`ChaseResult`](crate::ChaseResult) *next to*
//! [`ChaseStats`](crate::ChaseStats) — stats stay timing-free and
//! `Eq`-comparable across strategies, while the profile records wall time
//! (through the engine's injected [`Clock`](ontodq_obs::Clock)) and the
//! hash-vs-leapfrog kernel decision per rule, making the
//! [`JoinEngine::Auto`](crate::JoinEngine::Auto) heuristic auditable.
//!
//! Profiles are mergeable: a served context accumulates one profile across
//! every incremental resume, and the server's `!profile` command reports
//! the top rules by cumulative join time.

use ontodq_datalog::TerminationCertificate;

/// Cumulative per-rule measurements (one per TGD, by rule index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// Rule index in the program's TGD list.
    pub rule_index: usize,
    /// Rule label, or `tgd<i> -> <head predicates>` when unlabeled.
    pub label: String,
    /// Trigger-discovery joins run (once per rule per round).
    pub evaluations: u64,
    /// Triggers discovered across all evaluations (delta rows).
    pub delta_rows: u64,
    /// Triggers that fired (added at least one tuple).
    pub fires: u64,
    /// Triggers skipped because the head was already satisfied.
    pub satisfied: u64,
    /// Tuples this rule added.
    pub tuples_added: u64,
    /// Cumulative trigger-discovery (join) time, in microseconds.
    pub join_micros: u64,
    /// Evaluations that took the hash-join kernel.
    pub hash_evals: u64,
    /// Evaluations that took the worst-case-optimal (leapfrog) kernel.
    pub wco_evals: u64,
}

impl RuleProfile {
    /// Fold `other` (a later run of the same rule) into `self`.
    pub fn merge(&mut self, other: &RuleProfile) {
        self.evaluations += other.evaluations;
        self.delta_rows += other.delta_rows;
        self.fires += other.fires;
        self.satisfied += other.satisfied;
        self.tuples_added += other.tuples_added;
        self.join_micros += other.join_micros;
        self.hash_evals += other.hash_evals;
        self.wco_evals += other.wco_evals;
    }

    /// `hash`, `wco`, `mixed`, or `-` (never evaluated): which join kernel
    /// this rule's evaluations used.
    pub fn kernel(&self) -> &'static str {
        match (self.hash_evals > 0, self.wco_evals > 0) {
            (true, true) => "mixed",
            (true, false) => "hash",
            (false, true) => "wco",
            (false, false) => "-",
        }
    }
}

/// Phase timings of one or more DRed retraction batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DredTiming {
    /// Retraction batches folded into this timing.
    pub batches: u64,
    /// Phase 1: over-approximated consequence-closure time, µs.
    pub cascade_micros: u64,
    /// Phase 2: tombstoning time, µs.
    pub delete_micros: u64,
    /// Phase 3: re-derivation resume time, µs.
    pub rederive_micros: u64,
}

impl DredTiming {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &DredTiming) {
        self.batches += other.batches;
        self.cascade_micros += other.cascade_micros;
        self.delete_micros += other.delete_micros;
        self.rederive_micros += other.rederive_micros;
    }
}

/// The profile of one chase run (or the merged profile of many).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaseProfile {
    /// Whether the run collected measurements (false: everything is zero).
    pub enabled: bool,
    /// Per-rule measurements, indexed by TGD position.
    pub rules: Vec<RuleProfile>,
    /// Cumulative EGD-enforcement time, µs.
    pub egd_micros: u64,
    /// End-to-end driver time, µs.
    pub total_micros: u64,
    /// DRed phase timings, when this profile covers retraction batches.
    pub dred: DredTiming,
    /// The [`TerminationCertificate`] the run(s) were configured with (see
    /// [`ChaseConfig::certificate`](crate::ChaseConfig::certificate)), when
    /// any; carried here so `!profile` / `!metrics` can report the class
    /// next to the timings.  Unlike the timing fields this survives
    /// `profile: false` runs — certification is not a measurement.
    pub certificate: Option<TerminationCertificate>,
    /// Error-severity diagnostics the engine attached across the merged
    /// runs (certificate invariant violations).
    pub lint_errors: u64,
    /// Warning-severity diagnostics the engine attached across the merged
    /// runs (uncertified-chase warnings).
    pub lint_warnings: u64,
}

impl ChaseProfile {
    /// An empty, disabled profile (what a `profile: false` run carries).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled profile with one zeroed [`RuleProfile`] per `labels`
    /// entry.
    pub fn for_rules(labels: Vec<String>) -> Self {
        Self {
            enabled: true,
            rules: labels
                .into_iter()
                .enumerate()
                .map(|(rule_index, label)| RuleProfile {
                    rule_index,
                    label,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    /// Fold `other` into `self`: per-rule sums matched by index (the rule
    /// list grows to cover `other`'s), scalar timings added.  Merging an
    /// enabled profile into a disabled one enables it.  The certificate and
    /// diagnostic counts merge even from disabled profiles — they are facts
    /// about the runs, not measurements.
    pub fn merge(&mut self, other: &ChaseProfile) {
        if self.certificate.is_none() {
            self.certificate = other.certificate.clone();
        }
        self.lint_errors += other.lint_errors;
        self.lint_warnings += other.lint_warnings;
        if !other.enabled {
            return;
        }
        self.enabled = true;
        for rule in &other.rules {
            if rule.rule_index >= self.rules.len() {
                self.rules
                    .resize_with(rule.rule_index + 1, Default::default);
            }
            let mine = &mut self.rules[rule.rule_index];
            mine.rule_index = rule.rule_index;
            if mine.label.is_empty() {
                mine.label = rule.label.clone();
            }
            mine.merge(rule);
        }
        self.egd_micros += other.egd_micros;
        self.total_micros += other.total_micros;
        self.dred.merge(&other.dred);
    }

    /// The rules that were evaluated at least once, ordered by descending
    /// cumulative join time (ties by rule index), truncated to `n`.
    pub fn top_by_join_micros(&self, n: usize) -> Vec<&RuleProfile> {
        let mut rules: Vec<&RuleProfile> =
            self.rules.iter().filter(|r| r.evaluations > 0).collect();
        rules.sort_by(|a, b| {
            b.join_micros
                .cmp(&a.join_micros)
                .then(a.rule_index.cmp(&b.rule_index))
        });
        rules.truncate(n);
        rules
    }

    /// Total join time across all rules, µs.
    pub fn join_micros(&self) -> u64 {
        self.rules.iter().map(|r| r.join_micros).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(index: usize, join_micros: u64, evaluations: u64) -> RuleProfile {
        RuleProfile {
            rule_index: index,
            label: format!("r{index}"),
            evaluations,
            join_micros,
            ..Default::default()
        }
    }

    #[test]
    fn merge_accumulates_by_rule_index() {
        let mut a = ChaseProfile::for_rules(vec!["r0".into(), "r1".into()]);
        a.rules[0].join_micros = 10;
        a.rules[0].evaluations = 1;
        let mut b = ChaseProfile::for_rules(vec!["r0".into(), "r1".into(), "r2".into()]);
        b.rules[0].join_micros = 5;
        b.rules[0].evaluations = 2;
        b.rules[2].fires = 3;
        b.egd_micros = 7;
        a.merge(&b);
        assert_eq!(a.rules.len(), 3);
        assert_eq!(a.rules[0].join_micros, 15);
        assert_eq!(a.rules[0].evaluations, 3);
        assert_eq!(a.rules[2].fires, 3);
        assert_eq!(a.egd_micros, 7);
    }

    #[test]
    fn merging_disabled_is_a_noop() {
        let mut a = ChaseProfile::for_rules(vec!["r0".into()]);
        a.rules[0].join_micros = 10;
        let before = a.clone();
        a.merge(&ChaseProfile::disabled());
        assert_eq!(a, before);
    }

    #[test]
    fn top_by_join_micros_orders_and_filters() {
        let mut profile = ChaseProfile {
            enabled: true,
            rules: vec![rule(0, 5, 1), rule(1, 50, 2), rule(2, 5, 1), rule(3, 0, 0)],
            ..Default::default()
        };
        profile.rules[3].join_micros = 99; // never evaluated → excluded
        let top = profile.top_by_join_micros(3);
        let order: Vec<usize> = top.iter().map(|r| r.rule_index).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn kernel_labels() {
        let mut r = rule(0, 0, 0);
        assert_eq!(r.kernel(), "-");
        r.hash_evals = 1;
        assert_eq!(r.kernel(), "hash");
        r.wco_evals = 1;
        assert_eq!(r.kernel(), "mixed");
        r.hash_evals = 0;
        assert_eq!(r.kernel(), "wco");
    }
}
