//! `DeterministicWSQAns`: deterministic, top-down, backtracking query
//! answering for (weakly-sticky) Datalog± ontologies — Section IV of the
//! paper.
//!
//! The algorithm searches for an *accepting resolution proof schema*: a
//! tree whose leaves are ground atoms of the extensional database and whose
//! internal nodes are TGD applications entailing the query atoms.  Query
//! atoms are resolved left to right; at each step an atom is closed either by
//! matching an extensional tuple or by resolving it against a TGD head (whose
//! body atoms then become new sub-goals).  All decisions are kept on an
//! explicit backtracking stack (here: the recursion), restoring earlier
//! choices when a later atom cannot be resolved — the deterministic
//! counterpart of the non-deterministic `WeaklyStickyQAns` of Calì, Gottlob
//! and Pieris that the paper builds on.
//!
//! Existential head variables are handled soundly for *certain-answer*
//! semantics: resolving a goal against a head position that is existential
//! binds the goal's term to a fresh labeled null, which can never be matched
//! against a constant later on; a goal carrying a constant at an existential
//! position simply cannot be resolved through that rule.
//!
//! Open (non-Boolean) queries are answered as in the paper: candidate
//! substitutions for the answer variables are drawn from the constants of the
//! extensional database (its active domain), and each grounded Boolean query
//! is checked with the same procedure.

use crate::query::{AnswerSet, ConjunctiveQuery};
use ontodq_datalog::{Atom, Comparison, Program, Term, Tgd, Unifier, Variable};
use ontodq_relational::{Database, NullGenerator, Tuple, Value};
use std::collections::BTreeSet;

/// Configuration of the resolution-based answering procedure.
#[derive(Debug, Clone)]
pub struct ResolutionConfig {
    /// Maximum number of nested TGD resolutions along one proof branch.
    /// Weak stickiness bounds the necessary depth polynomially in the fixed
    /// rule set; the default is generous for the ontologies in this crate.
    pub max_rule_depth: usize,
    /// Upper bound on the number of candidate substitutions enumerated for
    /// open queries (|adom|^arity can explode; the guard keeps the engine
    /// predictable — exceeding it returns the answers found so far).
    pub max_open_candidates: usize,
}

impl Default for ResolutionConfig {
    fn default() -> Self {
        Self {
            max_rule_depth: 32,
            max_open_candidates: 1_000_000,
        }
    }
}

/// The deterministic resolution-based query answering engine.
#[derive(Debug, Clone)]
pub struct DeterministicWsqAns<'a> {
    program: &'a Program,
    database: &'a Database,
    config: ResolutionConfig,
}

impl<'a> DeterministicWsqAns<'a> {
    /// Create an engine over a program and an extensional database.
    pub fn new(program: &'a Program, database: &'a Database) -> Self {
        Self::with_config(program, database, ResolutionConfig::default())
    }

    /// Create an engine with an explicit configuration.
    pub fn with_config(
        program: &'a Program,
        database: &'a Database,
        config: ResolutionConfig,
    ) -> Self {
        Self {
            program,
            database,
            config,
        }
    }

    /// Answer a Boolean conjunctive query: is it entailed by the ontology
    /// (program + extensional database)?
    pub fn answer_boolean(&self, query: &ConjunctiveQuery) -> bool {
        let goals: Vec<Atom> = query.body.atoms.clone();
        let comparisons = query.body.comparisons.clone();
        let mut rename_counter = 0usize;
        let nulls = NullGenerator::starting_at(1_000_000);
        self.resolve(
            &goals,
            Unifier::new(),
            &comparisons,
            self.config.max_rule_depth,
            &mut rename_counter,
            &nulls,
        )
        .is_some()
    }

    /// Answer an open conjunctive query by enumerating candidate
    /// substitutions from the active domain and checking each grounded query.
    /// Only certain (null-free) answers are returned.
    pub fn answer_open(&self, query: &ConjunctiveQuery) -> AnswerSet {
        if query.is_boolean() {
            let mut answers = AnswerSet::new();
            if self.answer_boolean(query) {
                answers.insert(Tuple::new(vec![]));
            }
            return answers;
        }
        let mut answers = AnswerSet::new();
        let domain: Vec<Value> = self.candidate_domain(query);
        let arity = query.arity();
        let total = domain.len().checked_pow(arity as u32).unwrap_or(usize::MAX);
        let budget = total.min(self.config.max_open_candidates);
        let mut emitted = 0usize;
        let mut indices = vec![0usize; arity];
        if domain.is_empty() {
            return answers;
        }
        loop {
            if emitted >= budget {
                break;
            }
            emitted += 1;
            let tuple = Tuple::new(indices.iter().map(|&i| domain[i]).collect());
            let grounded = query.instantiate(&tuple);
            if self.answer_boolean(&grounded) {
                answers.insert(tuple);
            }
            // Advance the mixed-radix counter.
            let mut position = 0;
            loop {
                if position == arity {
                    return answers;
                }
                indices[position] += 1;
                if indices[position] < domain.len() {
                    break;
                }
                indices[position] = 0;
                position += 1;
            }
        }
        answers
    }

    /// The candidate constants for answer variables: the active domain of the
    /// extensional database plus constants mentioned by the program rules and
    /// the query itself.
    fn candidate_domain(&self, query: &ConjunctiveQuery) -> Vec<Value> {
        let mut domain: BTreeSet<Value> = self.database.active_domain();
        for tgd in &self.program.tgds {
            for atom in tgd.body.atoms.iter().chain(tgd.head.iter()) {
                for value in atom.constants() {
                    domain.insert(value);
                }
            }
        }
        for fact in &self.program.facts {
            for value in fact.atom().constants() {
                domain.insert(value);
            }
        }
        for atom in &query.body.atoms {
            for value in atom.constants() {
                domain.insert(value);
            }
        }
        domain.into_iter().filter(|v| v.is_constant()).collect()
    }

    /// Resolve all goals; returns the final unifier of the first accepting
    /// proof found, or `None`.
    fn resolve(
        &self,
        goals: &[Atom],
        unifier: Unifier,
        comparisons: &[Comparison],
        depth: usize,
        rename_counter: &mut usize,
        nulls: &NullGenerator,
    ) -> Option<Unifier> {
        let Some((goal, rest)) = goals.split_first() else {
            // All atoms resolved: check the comparison literals.
            return self
                .comparisons_hold(comparisons, &unifier)
                .then_some(unifier);
        };
        let goal = unifier.apply_atom(goal);

        // Choice (a): match the goal against an extensional (or
        // program-fact) tuple.
        if let Ok(relation) = self.database.relation(&goal.predicate) {
            if relation.schema().arity() == goal.arity() {
                // Bind constant positions (borrowed) to narrow the scan.
                let bindings: Vec<(usize, &Value)> = goal
                    .terms
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| t.as_const().map(|v| (i, v)))
                    .collect();
                for tuple in relation.select(&bindings) {
                    let mut candidate = unifier.clone();
                    if unify_with_tuple(&mut candidate, &goal, &tuple) {
                        if let Some(result) =
                            self.resolve(rest, candidate, comparisons, depth, rename_counter, nulls)
                        {
                            return Some(result);
                        }
                    }
                }
            }
        }
        for fact in &self.program.facts {
            if fact.atom().predicate == goal.predicate && fact.atom().arity() == goal.arity() {
                let mut candidate = unifier.clone();
                if candidate.unify_atoms(&goal, fact.atom()) {
                    if let Some(result) =
                        self.resolve(rest, candidate, comparisons, depth, rename_counter, nulls)
                    {
                        return Some(result);
                    }
                }
            }
        }

        // Choice (b): resolve the goal against a TGD head.
        if depth == 0 {
            return None;
        }
        for tgd in &self.program.tgds {
            for head_index in 0..tgd.head.len() {
                *rename_counter += 1;
                let renamed = rename_apart(tgd, *rename_counter);
                let head_atom = &renamed.head[head_index];
                if head_atom.predicate != goal.predicate || head_atom.arity() != goal.arity() {
                    continue;
                }
                // Existential variables may not capture constants of the goal
                // (certain-answer semantics); bind them to fresh nulls first.
                let existential = renamed.existential_variables();
                let mut candidate = unifier.clone();
                let mut consistent = true;
                for var in &existential {
                    let fresh = Term::Const(Value::Null(nulls.fresh()));
                    if !candidate.unify_terms(&Term::Var(*var), &fresh) {
                        consistent = false;
                        break;
                    }
                }
                if !consistent {
                    continue;
                }
                if !candidate.unify_atoms(&goal, head_atom) {
                    continue;
                }
                // The TGD body atoms become new sub-goals, resolved before the
                // remaining goals (left-to-right, depth-first).
                let mut new_goals: Vec<Atom> = renamed.body.atoms.clone();
                new_goals.extend_from_slice(rest);
                if let Some(result) = self.resolve(
                    &new_goals,
                    candidate,
                    comparisons,
                    depth - 1,
                    rename_counter,
                    nulls,
                ) {
                    return Some(result);
                }
            }
        }
        None
    }

    fn comparisons_hold(&self, comparisons: &[Comparison], unifier: &Unifier) -> bool {
        comparisons.iter().all(|cmp| {
            let left = unifier.apply_term(&cmp.left);
            let right = unifier.apply_term(&cmp.right);
            match (left, right) {
                (Term::Const(l), Term::Const(r)) => cmp.op.eval(&l, &r).unwrap_or(false),
                // A comparison over an unresolved variable cannot be certain.
                _ => false,
            }
        })
    }
}

/// Unify a goal atom with a database tuple (constants on the tuple side).
fn unify_with_tuple(unifier: &mut Unifier, goal: &Atom, tuple: &Tuple) -> bool {
    goal.terms
        .iter()
        .zip(tuple.values())
        .all(|(term, value)| unifier.unify_terms(term, &Term::Const(*value)))
}

/// Rename a TGD's variables apart by suffixing them with a use counter.
fn rename_apart(tgd: &Tgd, counter: usize) -> Tgd {
    let mut unifier = Unifier::new();
    let vars: BTreeSet<Variable> = tgd
        .body_variables()
        .into_iter()
        .chain(tgd.head_variables())
        .collect();
    for var in vars {
        let renamed = var.renamed(counter);
        let bound = unifier.unify_terms(&Term::Var(var), &Term::Var(renamed));
        debug_assert!(bound);
    }
    Tgd {
        label: tgd.label.clone(),
        body: unifier.apply_conjunction(&tgd.body),
        head: tgd.head.iter().map(|a| unifier.apply_atom(a)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::MaterializedEngine;
    use ontodq_datalog::parse_program;
    use ontodq_mdm::fixtures::hospital;

    fn hospital_compiled() -> (Program, Database) {
        let compiled = ontodq_mdm::compile(&hospital::ontology());
        (compiled.program, compiled.database)
    }

    #[test]
    fn boolean_query_on_extensional_data() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::new(&program, &db);
        let q = ConjunctiveQuery::parse("Q() :- PatientWard(W1, d, p).").unwrap();
        assert!(engine.answer_boolean(&q));
        let q2 = ConjunctiveQuery::parse("Q() :- PatientWard(W9, d, p).").unwrap();
        assert!(!engine.answer_boolean(&q2));
    }

    #[test]
    fn boolean_query_requiring_upward_navigation() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::new(&program, &db);
        // PatientUnit is purely intensional: answering requires resolving
        // through rule (7).
        let q = ConjunctiveQuery::parse("Q() :- PatientUnit(Standard, d, p), p = \"Tom Waits\".")
            .unwrap();
        assert!(engine.answer_boolean(&q));
        let q2 = ConjunctiveQuery::parse("Q() :- PatientUnit(Terminal, d, p), p = \"Lou Reed\".")
            .unwrap();
        assert!(!engine.answer_boolean(&q2));
    }

    #[test]
    fn boolean_query_requiring_downward_navigation() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::new(&program, &db);
        // Example 5: Mark has a shift in W2 on Sep/9 (with an unknown shift
        // value) — entailed through rule (8).
        let q = ConjunctiveQuery::parse("Q() :- Shifts(W2, \"Sep/9\", \"Mark\", s).").unwrap();
        assert!(engine.answer_boolean(&q));
        // But no particular shift value is certain.
        let q2 =
            ConjunctiveQuery::parse("Q() :- Shifts(W2, \"Sep/9\", \"Mark\", s), s = \"morning\".")
                .unwrap();
        assert!(!engine.answer_boolean(&q2));
    }

    #[test]
    fn existential_positions_do_not_capture_constants() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::new(&program, &db);
        // Asking for a *specific* shift value that only exists as a null must
        // fail; the extensional Shifts tuples still answer their own values.
        let q = ConjunctiveQuery::parse("Q() :- Shifts(W1, \"Sep/6\", \"Helen\", \"morning\").")
            .unwrap();
        assert!(engine.answer_boolean(&q));
        let q2 = ConjunctiveQuery::parse("Q() :- Shifts(W2, \"Sep/9\", \"Mark\", \"morning\").")
            .unwrap();
        assert!(!engine.answer_boolean(&q2));
    }

    #[test]
    fn open_query_example_5() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::new(&program, &db);
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        let answers = engine.answer_open(&q);
        assert_eq!(answers.to_vec(), vec![Tuple::from_iter(["Sep/9"])]);
    }

    #[test]
    fn open_answers_match_materialization_on_the_hospital_ontology() {
        let (program, db) = hospital_compiled();
        let resolution = DeterministicWsqAns::new(&program, &db);
        let materialized = MaterializedEngine::new(&program, &db);
        for text in [
            "Q(d) :- Shifts(W1, d, \"Mark\", s).",
            "Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".",
            "Q(u) :- PatientUnit(u, d, \"Tom Waits\").",
            "Q(n) :- Shifts(W2, d, n, s).",
            "Q(w, d) :- Shifts(w, d, \"Helen\", s).",
        ] {
            let q = ConjunctiveQuery::parse(text).unwrap();
            assert_eq!(
                resolution.answer_open(&q),
                materialized.certain_answers(&q),
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn recursive_programs_respect_the_depth_bound() {
        // Transitive closure: resolution must chain rule applications.
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert_values("E", [a, b]).unwrap();
        }
        let engine = DeterministicWsqAns::new(&program, &db);
        let q = ConjunctiveQuery::parse("Q() :- T(\"a\", \"d\").").unwrap();
        assert!(engine.answer_boolean(&q));
        // With a tiny depth bound the distant fact is no longer provable.
        let strict = DeterministicWsqAns::with_config(
            &program,
            &db,
            ResolutionConfig {
                max_rule_depth: 1,
                ..Default::default()
            },
        );
        assert!(!strict.answer_boolean(&q));
        // The bound does not affect directly provable goals.
        let q_close = ConjunctiveQuery::parse("Q() :- T(\"a\", \"b\").").unwrap();
        assert!(strict.answer_boolean(&q_close));
    }

    #[test]
    fn program_facts_participate_in_proofs() {
        let program = parse_program(
            "Unit(Standard).\n\
             KnownUnit(u) :- Unit(u).\n",
        )
        .unwrap();
        let db = Database::new();
        let engine = DeterministicWsqAns::new(&program, &db);
        let q = ConjunctiveQuery::parse("Q() :- KnownUnit(Standard).").unwrap();
        assert!(engine.answer_boolean(&q));
        let q2 = ConjunctiveQuery::parse("Q() :- KnownUnit(Oncology).").unwrap();
        assert!(!engine.answer_boolean(&q2));
    }

    #[test]
    fn boolean_open_query_wrapper() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::new(&program, &db);
        let q = ConjunctiveQuery::parse("Q() :- PatientUnit(Standard, d, p).").unwrap();
        let answers = engine.answer_open(&q);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&Tuple::new(vec![])));
    }

    #[test]
    fn open_candidate_budget_is_respected() {
        let (program, db) = hospital_compiled();
        let engine = DeterministicWsqAns::with_config(
            &program,
            &db,
            ResolutionConfig {
                max_open_candidates: 5,
                ..Default::default()
            },
        );
        let q = ConjunctiveQuery::parse("Q(u) :- PatientUnit(u, d, \"Tom Waits\").").unwrap();
        // The guard keeps the engine from enumerating the full domain; it may
        // find fewer answers but must not loop or panic.
        let answers = engine.answer_open(&q);
        assert!(answers.len() <= 5);
    }
}
