//! First-order (UCQ) query rewriting for upward-navigation ontologies —
//! Section IV of the paper.
//!
//! For ontologies whose dimensional rules only navigate upward (detected
//! syntactically by `ontodq_mdm::navigation::is_upward_only`), conjunctive
//! queries can be rewritten into a union of conjunctive queries that is
//! evaluated *directly* on the extensional database, with no chase and no
//! resolution search.  The rewriting repeatedly unfolds query atoms against
//! TGD heads (backward application of the rules), the classic
//! PerfectRef-style procedure adapted to the dimensional setting where
//! roll-up joins are replaced by parent–child atoms.
//!
//! Existential head variables are handled with the usual applicability
//! condition: a rule may be used to unfold an atom only if the terms at the
//! existential positions are variables that occur nowhere else in the query
//! (and are not answer variables) — otherwise the unfolding would lose the
//! join/selection on the unknown value.

use crate::query::{AnswerSet, ConjunctiveQuery};
use ontodq_datalog::{Atom, Comparison, Conjunction, Program, Term, Tgd, Unifier, Variable};
use ontodq_relational::Database;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Configuration of the rewriting procedure.
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Maximum number of distinct conjunctive queries generated.
    pub max_queries: usize,
    /// Maximum number of unfolding steps.
    pub max_steps: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        Self {
            max_queries: 10_000,
            max_steps: 100_000,
        }
    }
}

/// A union of conjunctive queries (the rewriting output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    /// The disjuncts, all sharing the same answer arity.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` when the union is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Evaluate the union over an extensional database, returning certain
    /// (null-free) answers.  Evaluation goes through the shared join engine
    /// of `ontodq-chase`, so any hash indexes present on the database (built
    /// by [`UnionQuery::prepare`], by a prior chase, or by hand) are used.
    pub fn evaluate(&self, database: &Database) -> AnswerSet {
        let mut answers = AnswerSet::new();
        for query in &self.disjuncts {
            for tuple in
                ontodq_chase::evaluate_project(database, &query.body, &query.answer_variables)
            {
                if tuple.is_ground() {
                    answers.insert(tuple);
                }
            }
        }
        answers
    }

    /// Build the hash indexes every disjunct's join positions want
    /// (idempotent).  A rewriting is evaluated once per disjunct over the
    /// same extensional database, so shared join positions pay the build
    /// cost once and every disjunct profits.
    pub fn prepare(&self, database: &mut Database) {
        for query in &self.disjuncts {
            ontodq_chase::ensure_indexes(database, &query.body);
        }
    }

    /// [`UnionQuery::prepare`] + [`UnionQuery::evaluate`] in one call.
    pub fn evaluate_prepared(&self, database: &mut Database) -> AnswerSet {
        self.prepare(database);
        self.evaluate(database)
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in &self.disjuncts {
            writeln!(f, "{q}")?;
        }
        Ok(())
    }
}

/// Rewrite a conjunctive query with respect to a program's TGDs, with the
/// default configuration.
pub fn rewrite(program: &Program, query: &ConjunctiveQuery) -> UnionQuery {
    rewrite_with(program, query, &RewriteConfig::default())
}

/// Rewrite with an explicit configuration.
pub fn rewrite_with(
    program: &Program,
    query: &ConjunctiveQuery,
    config: &RewriteConfig,
) -> UnionQuery {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out: Vec<ConjunctiveQuery> = Vec::new();
    let mut queue: VecDeque<ConjunctiveQuery> = VecDeque::new();
    let canonical = |q: &ConjunctiveQuery| canonicalize(q);

    seen.insert(canonical(query));
    out.push(query.clone());
    queue.push_back(query.clone());

    let mut steps = 0usize;
    let mut rename_counter = 0usize;

    while let Some(current) = queue.pop_front() {
        for (atom_index, atom) in current.body.atoms.iter().enumerate() {
            for tgd in &program.tgds {
                for head_index in 0..tgd.head.len() {
                    steps += 1;
                    if steps > config.max_steps || out.len() >= config.max_queries {
                        return UnionQuery { disjuncts: out };
                    }
                    rename_counter += 1;
                    if let Some(unfolded) =
                        unfold(&current, atom_index, atom, tgd, head_index, rename_counter)
                    {
                        let key = canonical(&unfolded);
                        if seen.insert(key) {
                            out.push(unfolded.clone());
                            queue.push_back(unfolded);
                        }
                    }
                }
            }
        }
    }
    UnionQuery { disjuncts: out }
}

/// Rewrite and evaluate in one step.
pub fn answer_by_rewriting(
    program: &Program,
    database: &Database,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    rewrite(program, query).evaluate(database)
}

/// Rewrite and evaluate in one step, building the rewriting's join indexes
/// on the extensional database first (they persist on `database` and are
/// maintained incrementally by `ontodq-relational`, so repeated calls pay
/// the build cost once).
pub fn answer_by_rewriting_prepared(
    program: &Program,
    database: &mut Database,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    rewrite(program, query).evaluate_prepared(database)
}

/// Attempt to unfold `atom` (at `atom_index` in `query`) against head atom
/// `head_index` of `tgd`.  Returns the new query, or `None` when the rule is
/// not applicable.
fn unfold(
    query: &ConjunctiveQuery,
    atom_index: usize,
    atom: &Atom,
    tgd: &Tgd,
    head_index: usize,
    rename_counter: usize,
) -> Option<ConjunctiveQuery> {
    let renamed = rename_apart(tgd, rename_counter);
    let head = &renamed.head[head_index];
    if head.predicate != atom.predicate || head.arity() != atom.arity() {
        return None;
    }
    let existential = renamed.existential_variables();

    // Applicability of existential positions: the query term must be a
    // variable occurring nowhere else in the query and not an answer
    // variable.
    let occurrences = variable_occurrences(query);
    for (position, head_term) in head.terms.iter().enumerate() {
        let head_var = head_term.as_var();
        let is_existential = head_var.map(|v| existential.contains(v)).unwrap_or(false);
        if !is_existential {
            continue;
        }
        match &atom.terms[position] {
            Term::Const(_) => return None,
            Term::Var(v) => {
                if query.answer_variables.contains(v) {
                    return None;
                }
                if occurrences.get(v).copied().unwrap_or(0) > 1 {
                    return None;
                }
            }
        }
    }

    // Unify the query atom with the head.
    let mut unifier = Unifier::new();
    if !unifier.unify_atoms(atom, head) {
        return None;
    }

    // Answer variables must remain variables (we do not specialize the answer
    // tuple shape).
    for answer in &query.answer_variables {
        if unifier.apply_term(&Term::Var(*answer)).is_const() {
            return None;
        }
    }

    // Build the unfolded body: the other query atoms plus the rule body, all
    // under the unifier; comparisons are carried over.
    let mut atoms: Vec<Atom> = Vec::new();
    for (i, other) in query.body.atoms.iter().enumerate() {
        if i != atom_index {
            atoms.push(unifier.apply_atom(other));
        }
    }
    for body_atom in &renamed.body.atoms {
        atoms.push(unifier.apply_atom(body_atom));
    }
    let comparisons: Vec<Comparison> = query
        .body
        .comparisons
        .iter()
        .map(|c| {
            Comparison::new(
                unifier.apply_term(&c.left),
                c.op,
                unifier.apply_term(&c.right),
            )
        })
        .collect();

    // Rename answer variables through the unifier (a head variable may have
    // been substituted for them).
    let answer_variables: Vec<Variable> = query
        .answer_variables
        .iter()
        .map(|v| match unifier.apply_term(&Term::Var(*v)) {
            Term::Var(nv) => nv,
            Term::Const(_) => unreachable!("checked above"),
        })
        .collect();

    let mut body = Conjunction::positive(atoms);
    body.comparisons = comparisons;
    Some(ConjunctiveQuery::new(
        query.name.clone(),
        answer_variables,
        body,
    ))
}

/// Count variable occurrences across the query body and head.
fn variable_occurrences(query: &ConjunctiveQuery) -> BTreeMap<Variable, usize> {
    let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
    for atom in &query.body.atoms {
        for term in &atom.terms {
            if let Term::Var(v) = term {
                *counts.entry(*v).or_default() += 1;
            }
        }
    }
    for cmp in &query.body.comparisons {
        for term in [&cmp.left, &cmp.right] {
            if let Term::Var(v) = term {
                *counts.entry(*v).or_default() += 1;
            }
        }
    }
    counts
}

/// A canonical string for duplicate elimination: the query with variables
/// renamed to their first-occurrence index.
fn canonicalize(query: &ConjunctiveQuery) -> String {
    let mut mapping: BTreeMap<Variable, String> = BTreeMap::new();
    let mut next = 0usize;
    let mut canonical_term = |t: &Term| -> String {
        match t {
            Term::Var(v) => mapping
                .entry(*v)
                .or_insert_with(|| {
                    let name = format!("v{next}");
                    next += 1;
                    name
                })
                .clone(),
            Term::Const(c) => format!("c:{c}"),
        }
    };
    let mut parts: Vec<String> = Vec::new();
    parts.push(
        query
            .answer_variables
            .iter()
            .map(|v| canonical_term(&Term::Var(*v)))
            .collect::<Vec<_>>()
            .join(","),
    );
    // Sort atoms for a canonical order *after* canonical naming would change
    // semantics; keep body order (queries produced by unfolding in different
    // orders are treated as distinct, which only costs a few duplicates).
    for atom in &query.body.atoms {
        let args: Vec<String> = atom.terms.iter().map(&mut canonical_term).collect();
        parts.push(format!("{}({})", atom.predicate, args.join(",")));
    }
    for cmp in &query.body.comparisons {
        parts.push(format!(
            "{}{}{}",
            canonical_term(&cmp.left),
            cmp.op,
            canonical_term(&cmp.right)
        ));
    }
    parts.join("&")
}

/// Rename a TGD's variables apart (suffix by the counter).
fn rename_apart(tgd: &Tgd, counter: usize) -> Tgd {
    let mut unifier = Unifier::new();
    let vars: BTreeSet<Variable> = tgd
        .body_variables()
        .into_iter()
        .chain(tgd.head_variables())
        .collect();
    for var in vars {
        let renamed = Variable::new(format!("r{counter}_{}", var.name()));
        let bound = unifier.unify_terms(&Term::Var(var), &Term::Var(renamed));
        debug_assert!(bound);
    }
    Tgd {
        label: tgd.label.clone(),
        body: unifier.apply_conjunction(&tgd.body),
        head: tgd.head.iter().map(|a| unifier.apply_atom(a)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::MaterializedEngine;
    use ontodq_datalog::parse_program;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_mdm::{compile, MdOntology};
    use ontodq_relational::Tuple;

    /// The hospital ontology restricted to its upward rule (7), the setting
    /// in which the paper's FO rewriting applies.
    fn upward_only_ontology() -> MdOntology {
        let mut o = MdOntology::new("hospital-upward");
        o.add_dimension(hospital::hospital_dimension());
        o.add_dimension(hospital::time_dimension());
        for schema in hospital::categorical_schemas() {
            o.add_relation(schema);
        }
        let source = hospital::ontology();
        // Copy the categorical data.
        for relation in source.data().relations() {
            for tuple in relation.iter() {
                let values: Vec<_> = tuple.values().to_vec();
                o.add_tuple(relation.name(), values).unwrap();
            }
        }
        o.add_rule(hospital::patient_unit_rule());
        o
    }

    #[test]
    fn rewriting_unfolds_patient_unit_into_patient_ward() {
        let compiled = compile(&upward_only_ontology());
        let q = ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".")
            .unwrap();
        let ucq = rewrite(&compiled.program, &q);
        // Original query plus one unfolding through rule (7).
        assert_eq!(ucq.len(), 2);
        let rendered = ucq.to_string();
        assert!(rendered.contains("PatientWard"));
        assert!(rendered.contains("UnitWard"));
    }

    #[test]
    fn rewriting_answers_match_materialization_on_upward_only_ontologies() {
        let ontology = upward_only_ontology();
        assert!(ontodq_mdm::is_upward_only(&ontology));
        let compiled = compile(&ontology);
        let materialized = MaterializedEngine::new(&compiled.program, &compiled.database);
        for text in [
            "Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".",
            "Q(u, d) :- PatientUnit(u, d, \"Lou Reed\").",
            "Q(p) :- PatientUnit(Intensive, d, p).",
            "Q(d) :- PatientWard(W1, d, p).",
            "Q(u) :- PatientUnit(u, d, p), WorkingSchedules(u, d, n, t).",
        ] {
            let q = ConjunctiveQuery::parse(text).unwrap();
            let rewritten = answer_by_rewriting(&compiled.program, &compiled.database, &q);
            let reference = materialized.certain_answers(&q);
            assert_eq!(rewritten, reference, "disagreement on {text}");
        }
    }

    #[test]
    fn rewriting_is_evaluated_without_the_chase() {
        // The point of the rewriting: it runs on the *raw* extensional
        // database (no PatientUnit tuples exist anywhere).
        let compiled = compile(&upward_only_ontology());
        assert!(compiled
            .database
            .relation("PatientUnit")
            .map(|r| r.is_empty())
            .unwrap_or(true));
        let q =
            ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, \"Tom Waits\").").unwrap();
        let answers = answer_by_rewriting(&compiled.program, &compiled.database, &q);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&Tuple::from_iter(["Sep/5"])));
        assert!(answers.contains(&Tuple::from_iter(["Sep/6"])));
    }

    #[test]
    fn existential_rules_are_not_unfolded_when_the_value_is_constrained() {
        // Rule (8) invents the shift value; a query that constrains the shift
        // cannot be answered by unfolding through it.
        let compiled = compile(&hospital::ontology());
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s), s = \"morning\".")
            .unwrap();
        let ucq = rewrite(&compiled.program, &q);
        // Only the original disjunct remains (s occurs in the comparison, so
        // the existential applicability condition fails).
        assert_eq!(ucq.len(), 1);
        // An unconstrained shift variable can be unfolded away.
        let q2 = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        let ucq2 = rewrite(&compiled.program, &q2);
        assert_eq!(ucq2.len(), 2);
        let answers = ucq2.evaluate(&compiled.database);
        assert_eq!(answers.to_vec(), vec![Tuple::from_iter(["Sep/9"])]);
    }

    #[test]
    fn answer_variables_are_never_specialized_to_constants() {
        let program = parse_program("P(C1, x) :- R(x).\n").unwrap();
        let q = ConjunctiveQuery::parse("Q(a) :- P(a, b).").unwrap();
        let ucq = rewrite(&program, &q);
        // Unfolding would force the answer variable `a` to the constant C1 →
        // rejected; only the original query remains.
        assert_eq!(ucq.len(), 1);
    }

    #[test]
    fn recursive_rules_terminate_via_deduplication() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let q = ConjunctiveQuery::parse("Q(x, y) :- T(x, y).").unwrap();
        let config = RewriteConfig {
            max_queries: 50,
            max_steps: 5_000,
        };
        let ucq = rewrite_with(&program, &q, &config);
        assert!(ucq.len() <= 50);
        // The rewriting contains at least the one-step and two-step
        // unfoldings over E.
        let mut db = Database::new();
        db.insert_values("E", ["a", "b"]).unwrap();
        db.insert_values("E", ["b", "c"]).unwrap();
        let answers = ucq.evaluate(&db);
        assert!(answers.contains(&Tuple::from_iter(["a", "b"])));
        assert!(answers.contains(&Tuple::from_iter(["a", "c"])));
    }

    #[test]
    fn prepared_evaluation_builds_indexes_and_agrees_with_unprepared() {
        let ontology = upward_only_ontology();
        let compiled = compile(&ontology);
        let q = ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".")
            .unwrap();
        let plain = answer_by_rewriting(&compiled.program, &compiled.database, &q);
        let mut db = compiled.database.clone();
        let prepared = answer_by_rewriting_prepared(&compiled.program, &mut db, &q);
        assert_eq!(plain, prepared);
        // The rewriting joins PatientWard and UnitWard on the ward variable;
        // preparation must have left an index behind on at least one of the
        // join positions.
        assert!(
            db.relation("PatientWard").unwrap().has_index(0)
                || db.relation("UnitWard").unwrap().has_index(1)
        );
    }

    #[test]
    fn union_query_helpers() {
        let q = ConjunctiveQuery::parse("Q(x) :- R(x).").unwrap();
        let ucq = UnionQuery { disjuncts: vec![q] };
        assert_eq!(ucq.len(), 1);
        assert!(!ucq.is_empty());
        assert!(ucq.to_string().contains("R(x)"));
        let empty = UnionQuery { disjuncts: vec![] };
        assert!(empty.is_empty());
        assert!(empty.evaluate(&Database::new()).is_empty());
    }
}
