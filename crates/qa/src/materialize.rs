//! Chase-then-evaluate query answering (the materialization baseline).
//!
//! For terminating (e.g. weakly acyclic) programs the simplest complete
//! strategy is to chase the extensional database to a (finite) universal
//! model and evaluate the query on the result.  Certain answers are the
//! null-free tuples.  This module is both a usable engine for the paper's
//! ontologies (whose chase terminates on fixed dimension instances) and the
//! reference oracle that the deterministic resolution algorithm and the FO
//! rewriting are tested against.
//!
//! Query evaluation is routed through the shared join engine of
//! `ontodq-chase`: the (semi-naive) chase builds hash indexes for every
//! rule-body join position and maintains them incrementally while
//! materializing, so queries over the chased instance hit indexed joins for
//! free.  [`MaterializedEngine::prepare`] additionally builds the indexes a
//! specific query's own join positions want.

use crate::query::{AnswerSet, ConjunctiveQuery};
use ontodq_chase::{ChaseConfig, ChaseEngine, ChaseResult};
use ontodq_datalog::Program;
use ontodq_relational::Database;

/// A query-answering engine that materializes the chase once and evaluates
/// queries against the chased instance.
#[derive(Debug, Clone)]
pub struct MaterializedEngine {
    result: ChaseResult,
}

impl MaterializedEngine {
    /// Chase `program` over `database` with the default configuration.
    pub fn new(program: &Program, database: &Database) -> Self {
        Self::with_config(program, database, ChaseConfig::default())
    }

    /// Chase with an explicit configuration.
    pub fn with_config(program: &Program, database: &Database, config: ChaseConfig) -> Self {
        let result = ChaseEngine::new(config).run(program, database);
        Self { result }
    }

    /// The underlying chase result (instance, statistics, violations).
    pub fn chase_result(&self) -> &ChaseResult {
        &self.result
    }

    /// The chased (materialized) instance.
    pub fn materialized(&self) -> &Database {
        &self.result.database
    }

    /// Build the hash indexes `query`'s join positions benefit from on the
    /// materialized instance (idempotent; indexes the chase already built
    /// are reused).  Worth calling before answering the same query shape
    /// repeatedly.
    pub fn prepare(&mut self, query: &ConjunctiveQuery) {
        ontodq_chase::ensure_indexes(&mut self.result.database, &query.body);
    }

    /// All answers to the query over the materialized instance, including
    /// tuples containing labeled nulls (the "possible" answers).
    pub fn all_answers(&self, query: &ConjunctiveQuery) -> AnswerSet {
        let tuples = ontodq_chase::evaluate_project(
            &self.result.database,
            &query.body,
            &query.answer_variables,
        );
        AnswerSet::from_tuples(tuples)
    }

    /// The certain answers (null-free tuples) to the query.
    pub fn certain_answers(&self, query: &ConjunctiveQuery) -> AnswerSet {
        self.all_answers(query).certain()
    }

    /// Answer a Boolean query: is the body satisfiable in the materialized
    /// instance?
    pub fn boolean(&self, query: &ConjunctiveQuery) -> bool {
        ontodq_chase::is_satisfiable(&self.result.database, &query.body)
    }
}

/// One-shot helper: chase and return the certain answers.
pub fn certain_answers(
    program: &Program,
    database: &Database,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    MaterializedEngine::new(program, database).certain_answers(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_datalog::parse_program;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::Tuple;

    fn hospital_engine() -> MaterializedEngine {
        let compiled = ontodq_mdm::compile(&hospital::ontology());
        MaterializedEngine::new(&compiled.program, &compiled.database)
    }

    #[test]
    fn example_5_downward_navigation_query() {
        // "On which dates does Mark work in ward W1?" — the paper's Example 5
        // (and Example 2 asks about W2).  Downward navigation through rule
        // (8) yields Sep/9 for both wards.
        let engine = hospital_engine();
        let q_w1 = ConjunctiveQuery::parse("Q(d) :- Shifts(W1, d, \"Mark\", s).").unwrap();
        assert_eq!(
            engine.certain_answers(&q_w1).to_vec(),
            vec![Tuple::from_iter(["Sep/9"])]
        );
        let q_w2 = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        assert_eq!(
            engine.certain_answers(&q_w2).to_vec(),
            vec![Tuple::from_iter(["Sep/9"])]
        );
    }

    #[test]
    fn upward_navigation_answers_patient_unit_queries() {
        let engine = hospital_engine();
        let q = ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".")
            .unwrap();
        let answers = engine.certain_answers(&q);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&Tuple::from_iter(["Sep/5"])));
        assert!(answers.contains(&Tuple::from_iter(["Sep/6"])));
    }

    #[test]
    fn boolean_queries() {
        let engine = hospital_engine();
        let yes = ConjunctiveQuery::parse("Q() :- PatientUnit(Intensive, d, p).").unwrap();
        assert!(engine.boolean(&yes));
        let no = ConjunctiveQuery::parse("Q() :- PatientUnit(Oncology, d, p).").unwrap();
        assert!(!engine.boolean(&no));
    }

    #[test]
    fn certain_answers_exclude_null_shift_values() {
        let engine = hospital_engine();
        // Asking for the shift value of Mark's generated tuples returns a
        // labeled null → not a certain answer.
        let q = ConjunctiveQuery::parse("Q(s) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        assert!(engine.certain_answers(&q).is_empty());
        assert_eq!(engine.all_answers(&q).len(), 1);
    }

    #[test]
    fn one_shot_helper_matches_engine() {
        let compiled = ontodq_mdm::compile(&hospital::ontology());
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        let direct = certain_answers(&compiled.program, &compiled.database, &q);
        let engine = hospital_engine();
        assert_eq!(direct, engine.certain_answers(&q));
    }

    #[test]
    fn engine_reuses_single_materialization() {
        let compiled = ontodq_mdm::compile(&hospital::ontology());
        let engine = MaterializedEngine::new(&compiled.program, &compiled.database);
        // The materialized instance contains the generated PatientUnit and
        // Shifts data.
        assert!(engine.materialized().has_relation("PatientUnit"));
        assert!(engine.materialized().has_relation("Shifts"));
        assert!(engine.chase_result().stats.tuples_added > 0);
    }

    #[test]
    fn chase_built_indexes_survive_into_query_evaluation() {
        let mut engine = hospital_engine();
        // The semi-naive chase indexed the rule-body join positions of the
        // hospital program; those indexes live on in the materialized
        // instance.
        assert!(engine
            .materialized()
            .relation("UnitWard")
            .unwrap()
            .has_index(1));
        // Preparing a query adds its own join/constant positions.
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        let before = engine.certain_answers(&q);
        engine.prepare(&q);
        assert!(engine
            .materialized()
            .relation("Shifts")
            .unwrap()
            .has_index(0));
        assert_eq!(engine.certain_answers(&q), before);
    }

    #[test]
    fn works_on_plain_datalog_programs_too() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_values("E", ["a", "b"]).unwrap();
        db.insert_values("E", ["b", "c"]).unwrap();
        let q = ConjunctiveQuery::parse("Q(x, y) :- T(x, y).").unwrap();
        let answers = certain_answers(&program, &db, &q);
        assert_eq!(answers.len(), 3);
        assert!(answers.contains(&Tuple::from_iter(["a", "c"])));
    }
}
