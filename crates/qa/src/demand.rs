//! Demand-driven (magic-set) query answering.
//!
//! The materialization engine ([`crate::materialize::MaterializedEngine`])
//! chases the whole ontology before answering anything; for a selective
//! query that is almost all wasted work.  This module answers one query by
//! chasing only the fragment the query can observe: the program is
//! specialized with the magic-set transformation
//! ([`ontodq_datalog::analysis::magic_transform`]) and chased through
//! [`ontodq_chase::ChaseEngine::chase_for_query`], then the query is
//! evaluated on the demanded instance.  Certain answers equal the
//! materialization engine's (the equivalence the unit tests and
//! `tests/tests/demand_driven.rs` pin down); the work done is proportional
//! to the demanded portion.

use crate::query::{AnswerSet, ConjunctiveQuery};
use ontodq_chase::{ChaseEngine, ChaseResult};
use ontodq_datalog::Program;
use ontodq_relational::Database;

/// The answers to one demand-driven evaluation, with the chase step that
/// produced them (statistics show how little was materialized).
#[derive(Debug, Clone)]
pub struct DemandAnswer {
    /// The certain answers (null-free tuples).
    pub answers: AnswerSet,
    /// The demand-restricted chase step.
    pub chase: ChaseResult,
}

/// Answer `query` over `program` + `database` demand-driven: magic-transform
/// the program to the query's bound constants, chase only the relevant
/// fragment, evaluate.  Returns the certain answers together with the chase
/// statistics.
pub fn answer_on_demand(
    program: &Program,
    database: &Database,
    query: &ConjunctiveQuery,
) -> DemandAnswer {
    answer_on_demand_with(ChaseEngine::with_defaults(), program, database, query)
}

/// Like [`answer_on_demand`], with an explicit engine (strategy, budgets).
pub fn answer_on_demand_with(
    engine: ChaseEngine,
    program: &Program,
    database: &Database,
    query: &ConjunctiveQuery,
) -> DemandAnswer {
    let chase = engine.chase_for_query(program, database, &query.body);
    let tuples =
        ontodq_chase::evaluate_project(&chase.database, &query.body, &query.answer_variables);
    DemandAnswer {
        answers: AnswerSet::from_tuples(tuples).certain(),
        chase,
    }
}

/// Convenience: just the certain answers of [`answer_on_demand`].
pub fn certain_answers_on_demand(
    program: &Program,
    database: &Database,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    answer_on_demand(program, database, query).answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::MaterializedEngine;
    use ontodq_mdm::fixtures::hospital;

    fn compiled() -> (Program, Database) {
        let compiled = ontodq_mdm::compile(&hospital::ontology());
        (compiled.program, compiled.database)
    }

    #[test]
    fn demand_answers_equal_materialized_answers() {
        let (program, database) = compiled();
        let oracle = MaterializedEngine::new(&program, &database);
        for text in [
            "Q(d) :- Shifts(W2, d, \"Mark\", s).",
            "Q(d) :- Shifts(W1, d, \"Mark\", s).",
            "Q(u, d, p) :- PatientUnit(u, d, p).",
            "Q(d, p) :- PatientUnit(Standard, d, p).",
        ] {
            let query = ConjunctiveQuery::parse(text).unwrap();
            assert_eq!(
                certain_answers_on_demand(&program, &database, &query),
                oracle.certain_answers(&query),
                "demand vs materialized diverge on {text}"
            );
        }
    }

    #[test]
    fn demand_chase_is_smaller_than_materialization() {
        let (program, database) = compiled();
        let oracle = MaterializedEngine::new(&program, &database);
        let query = ConjunctiveQuery::parse("Q(d, p) :- PatientUnit(Standard, d, p).").unwrap();
        let demand = answer_on_demand(&program, &database, &query);
        assert!(
            demand.chase.stats.tuples_added < oracle.chase_result().stats.tuples_added,
            "demanded {} vs materialized {}",
            demand.chase.stats.tuples_added,
            oracle.chase_result().stats.tuples_added
        );
        assert!(!demand.answers.is_empty());
    }

    #[test]
    fn boolean_queries_answer_on_demand() {
        let (program, database) = compiled();
        let query =
            ConjunctiveQuery::parse("Q() :- PatientUnit(Standard, d, p), p = \"Tom Waits\".")
                .unwrap();
        let demand = answer_on_demand(&program, &database, &query);
        // A satisfied Boolean query has exactly the empty tuple as answer.
        assert_eq!(demand.answers.len(), 1);
    }
}
