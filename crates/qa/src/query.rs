//! Conjunctive queries and answer sets.

use ontodq_datalog::{parse_rule, Atom, Conjunction, Rule, Term, Variable};
use ontodq_relational::Tuple;
use std::collections::BTreeSet;
use std::fmt;

/// A conjunctive query `Q(x̄) ← body`.
///
/// When `answer_variables` is empty the query is Boolean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Optional query name (defaults to `Q`).
    pub name: String,
    /// The answer (head) variables, in output order.
    pub answer_variables: Vec<Variable>,
    /// The query body.
    pub body: Conjunction,
}

impl ConjunctiveQuery {
    /// Construct a query.
    pub fn new(
        name: impl Into<String>,
        answer_variables: Vec<Variable>,
        body: Conjunction,
    ) -> Self {
        Self {
            name: name.into(),
            answer_variables,
            body,
        }
    }

    /// A Boolean query with the given body.
    pub fn boolean(body: Conjunction) -> Self {
        Self::new("Q", Vec::new(), body)
    }

    /// Parse a query written as a rule, e.g.
    /// `Q(d) :- Shifts(W2, d, Mark, s).`
    ///
    /// The head predicate name becomes the query name and the head variables
    /// become the answer variables (constants in the head are not allowed).
    pub fn parse(text: &str) -> Result<Self, String> {
        let rule = parse_rule(text).map_err(|e| e.to_string())?;
        match rule {
            Rule::Tgd(tgd) => {
                if tgd.head.len() != 1 {
                    return Err("a query must have a single head atom".into());
                }
                let head = &tgd.head[0];
                let mut answer_variables = Vec::new();
                for term in &head.terms {
                    match term {
                        Term::Var(v) => answer_variables.push(*v),
                        Term::Const(c) => {
                            return Err(format!(
                                "query heads may only contain variables, found constant {c}"
                            ))
                        }
                    }
                }
                // Safety: answer variables must occur in the body.
                let body_vars: BTreeSet<Variable> = tgd.body.variables().into_iter().collect();
                for v in &answer_variables {
                    if !body_vars.contains(v) {
                        return Err(format!("answer variable {v} does not occur in the body"));
                    }
                }
                Ok(Self::new(
                    head.predicate.clone(),
                    answer_variables,
                    tgd.body,
                ))
            }
            other => Err(format!("not a conjunctive query: {other}")),
        }
    }

    /// `true` when the query is Boolean (no answer variables).
    pub fn is_boolean(&self) -> bool {
        self.answer_variables.is_empty()
    }

    /// The arity of the answer relation.
    pub fn arity(&self) -> usize {
        self.answer_variables.len()
    }

    /// The predicates referenced by the query body (positive atoms only).
    pub fn predicates(&self) -> BTreeSet<String> {
        self.body
            .atoms
            .iter()
            .map(|a| a.predicate.clone())
            .collect()
    }

    /// The Boolean query obtained by substituting `tuple` for the answer
    /// variables (positionally).  Panics if the arity does not match.
    pub fn instantiate(&self, tuple: &Tuple) -> ConjunctiveQuery {
        assert_eq!(tuple.arity(), self.arity(), "arity mismatch in instantiate");
        let mut unifier = ontodq_datalog::Unifier::new();
        for (var, value) in self.answer_variables.iter().zip(tuple.values()) {
            let bound = unifier.unify_terms(&Term::Var(*var), &Term::Const(*value));
            debug_assert!(bound);
        }
        ConjunctiveQuery {
            name: self.name.clone(),
            answer_variables: Vec::new(),
            body: unifier.apply_conjunction(&self.body),
        }
    }

    /// The body atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.body.atoms
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.answer_variables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- {}.", self.body)
    }
}

/// A set of answers to a conjunctive query: deduplicated tuples over the
/// answer variables, kept in sorted order for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnswerSet {
    tuples: BTreeSet<Tuple>,
}

impl AnswerSet {
    /// The empty answer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an answer set from tuples.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(tuples: I) -> Self {
        Self {
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Add a tuple; returns `true` when it was new.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        self.tuples.insert(tuple)
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Does the set contain `tuple`?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The answers as a sorted vector.
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.tuples.iter().cloned().collect()
    }

    /// Keep only the *certain* answers: tuples without labeled nulls.
    pub fn certain(&self) -> AnswerSet {
        AnswerSet {
            tuples: self
                .tuples
                .iter()
                .filter(|t| t.is_ground())
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

impl FromIterator<Tuple> for AnswerSet {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Self::from_tuples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_relational::{NullId, Value};

    #[test]
    fn parse_open_query() {
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.answer_variables, vec![Variable::new("d")]);
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert_eq!(q.predicates(), ["Shifts".to_string()].into());
    }

    #[test]
    fn parse_boolean_query() {
        let q = ConjunctiveQuery::parse("Q() :- PatientUnit(Standard, d, p).").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
    }

    #[test]
    fn parse_rejects_bad_queries() {
        // Constant in the head.
        assert!(ConjunctiveQuery::parse("Q(W1) :- Shifts(W1, d, n, s).").is_err());
        // Answer variable not in the body.
        assert!(ConjunctiveQuery::parse("Q(x) :- Shifts(W1, d, n, s).").is_err());
        // Not a rule at all.
        assert!(ConjunctiveQuery::parse("Shifts(W1, Sep5, Helen, morning).").is_err());
        // Facts/EGDs are not queries.
        assert!(ConjunctiveQuery::parse("x = y :- R(x, y).").is_err());
    }

    #[test]
    fn instantiate_produces_boolean_query() {
        let q = ConjunctiveQuery::parse("Q(d, n) :- Shifts(W2, d, n, s).").unwrap();
        let b = q.instantiate(&Tuple::from_iter(["Sep/9", "Mark"]));
        assert!(b.is_boolean());
        let atom = &b.body.atoms[0];
        assert_eq!(atom.terms[1], Term::constant("Sep/9"));
        assert_eq!(atom.terms[2], Term::constant("Mark"));
        // The non-answer variable stays a variable.
        assert!(atom.terms[3].is_var());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn instantiate_panics_on_arity_mismatch() {
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, n, s).").unwrap();
        let _ = q.instantiate(&Tuple::from_iter(["a", "b"]));
    }

    #[test]
    fn query_display_round_trips_through_parse() {
        let q = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, n, s), n = \"Mark\".").unwrap();
        let reparsed = ConjunctiveQuery::parse(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn answer_set_operations() {
        let mut answers = AnswerSet::new();
        assert!(answers.is_empty());
        assert!(answers.insert(Tuple::from_iter(["Sep/9"])));
        assert!(!answers.insert(Tuple::from_iter(["Sep/9"])));
        answers.insert(Tuple::from_iter(["Sep/5"]));
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&Tuple::from_iter(["Sep/5"])));
        // Sorted order.
        let v = answers.to_vec();
        assert_eq!(v[0], Tuple::from_iter(["Sep/5"]));
        assert_eq!(v[1], Tuple::from_iter(["Sep/9"]));
        assert_eq!(answers.to_string().lines().count(), 2);
    }

    #[test]
    fn certain_answers_drop_nulls() {
        let answers = AnswerSet::from_tuples([
            Tuple::from_iter(["Sep/9"]),
            Tuple::new(vec![Value::Null(NullId(0))]),
        ]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers.certain().len(), 1);
        assert!(answers.certain().contains(&Tuple::from_iter(["Sep/9"])));
    }
}
