//! # ontodq-qa
//!
//! Query answering over multidimensional Datalog± ontologies — Section IV of
//! *"Extending Contexts with Ontologies for Multidimensional Data Quality
//! Assessment"* (Milani, Bertossi, Ariyan; ICDE 2014).
//!
//! Three complementary strategies are provided:
//!
//! * [`materialize::MaterializedEngine`] — chase the ontology once and
//!   evaluate queries on the materialized instance (the reference oracle),
//! * [`resolution::DeterministicWsqAns`] — the paper's deterministic
//!   top-down backtracking search for accepting resolution proof schemas,
//!   answering Boolean conjunctive queries directly over the extensional
//!   database and open queries by enumerating candidate substitutions,
//! * [`mod@rewrite`] — first-order (union-of-CQ) rewriting for upward-navigation
//!   ontologies, evaluated directly on the extensional database,
//! * [`demand`] — demand-driven (magic-set) answering: the program is
//!   specialized to the query's bound constants and only the relevant
//!   fragment is chased.
//!
//! All strategies agree on certain answers for the ontologies the paper
//! considers; the integration tests and the benchmark harness exercise
//! exactly that agreement (and measure where each strategy pays off).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod materialize;
pub mod query;
pub mod resolution;
pub mod rewrite;

pub use demand::{answer_on_demand, certain_answers_on_demand, DemandAnswer};
pub use materialize::{certain_answers, MaterializedEngine};
pub use query::{AnswerSet, ConjunctiveQuery};
pub use resolution::{DeterministicWsqAns, ResolutionConfig};
pub use rewrite::{
    answer_by_rewriting, answer_by_rewriting_prepared, rewrite, rewrite_with, RewriteConfig,
    UnionQuery,
};

// Compile-time thread-safety audit: `ontodq-server` prepares queries once
// and reuses them from every worker thread (the shared prepared-query
// cache), and ships answer sets across threads in `Arc`s.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConjunctiveQuery>();
    assert_send_sync::<AnswerSet>();
    assert_send_sync::<UnionQuery>();
    assert_send_sync::<MaterializedEngine>();
};
