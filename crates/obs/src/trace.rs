//! Span-style tracing: a bounded ring of recent [`SpanRecord`]s.
//!
//! Two ways in:
//!
//! * [`SpanLog::span`] returns a guard that measures from construction to
//!   drop through the injected [`Clock`] and records itself;
//! * [`SpanLog::record`] pushes an already-measured record — the slow-query
//!   log uses this, since the duration is measured by the protocol loop
//!   anyway.
//!
//! The ring is deliberately tiny and lossy: it answers "what just
//! happened", not "what ever happened".  When full, the oldest record is
//! dropped.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What kind of work this was (e.g. a protocol verb).
    pub name: String,
    /// Free-form payload (e.g. the query text).
    pub detail: String,
    /// Clock reading when the span started.
    pub start_micros: u64,
    /// How long the span took.
    pub duration_micros: u64,
}

/// A bounded ring buffer of recent spans.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl SpanLog {
    /// A ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Push one record, evicting the oldest when full.
    pub fn record(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Start a measured span; it records itself when dropped.
    pub fn span<'a>(
        &'a self,
        clock: &'a dyn Clock,
        name: impl Into<String>,
        detail: impl Into<String>,
    ) -> Span<'a> {
        Span {
            log: self,
            clock,
            name: name.into(),
            detail: detail.into(),
            start_micros: clock.now_micros(),
        }
    }

    /// Oldest-first copy of the current contents.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no record is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every record.
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Maximum number of records the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// An in-flight span; records itself into its [`SpanLog`] on drop.
#[derive(Debug)]
pub struct Span<'a> {
    log: &'a SpanLog,
    clock: &'a dyn Clock,
    name: String,
    detail: String,
    start_micros: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.clock.now_micros();
        self.log.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            detail: std::mem::take(&mut self.detail),
            start_micros: self.start_micros,
            duration_micros: end.saturating_sub(self.start_micros),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let log = SpanLog::new(2);
        for i in 0..3u64 {
            log.record(SpanRecord {
                name: format!("s{i}"),
                detail: String::new(),
                start_micros: i,
                duration_micros: 0,
            });
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].name, "s1");
        assert_eq!(recent[1].name, "s2");
    }

    #[test]
    fn span_guard_measures_through_the_clock() {
        let clock = VirtualClock::new(100);
        let log = SpanLog::new(8);
        {
            let _span = log.span(&clock, "work", "payload");
            clock.advance(25);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].start_micros, 100);
        assert_eq!(recent[0].duration_micros, 25);
        assert_eq!(recent[0].detail, "payload");
    }
}
