//! The clock seam: every latency measurement and `micros=` response field
//! in the workspace reads time through a [`Clock`], never `Instant::now()`
//! directly.  Production code installs a [`MonotonicClock`]; deterministic
//! tests and the record/replay harness install a [`VirtualClock`] (frozen
//! or script-advanced), which makes timed output byte-for-byte reproducible
//! with no masking.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of microsecond timestamps on an arbitrary (per-clock) origin.
///
/// Timestamps are only meaningful as differences against the same clock;
/// they are **not** wall-clock epochs.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Microseconds elapsed since this clock's origin.
    fn now_micros(&self) -> u64;
}

/// A shared, dynamically-dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// The production clock: monotonic time since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A monotonic clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A manually-advanced clock for tests and deterministic replay.
///
/// Never moves on its own: two runs driving the same script against a
/// frozen (or identically-advanced) `VirtualClock` observe identical
/// timestamps, so every derived `micros=` field is reproducible.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at `start_micros`.
    pub fn new(start_micros: u64) -> Self {
        Self {
            now: AtomicU64::new(start_micros),
        }
    }

    /// Move the clock forward by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::SeqCst);
    }

    /// Set the clock to an absolute reading.
    pub fn set(&self, micros: u64) {
        self.now.store(micros, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// A fresh production clock handle (monotonic since now).
pub fn monotonic() -> SharedClock {
    Arc::new(MonotonicClock::new())
}

/// A frozen virtual clock handle reading `0` forever — every duration
/// measured through it is exactly zero, the replay-determinism baseline.
pub fn frozen() -> SharedClock {
    Arc::new(VirtualClock::new(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_told() {
        let clock = VirtualClock::new(5);
        assert_eq!(clock.now_micros(), 5);
        assert_eq!(clock.now_micros(), 5);
        clock.advance(10);
        assert_eq!(clock.now_micros(), 15);
        clock.set(3);
        assert_eq!(clock.now_micros(), 3);
    }

    #[test]
    fn frozen_clock_reads_zero() {
        let clock = frozen();
        assert_eq!(clock.now_micros(), 0);
        assert_eq!(clock.now_micros(), 0);
    }
}
