//! Lock-free metric primitives and the process registry.
//!
//! Three instrument kinds, all plain atomics on the hot path:
//!
//! * [`Counter`] — monotonically increasing `u64`;
//! * [`Gauge`] — last-written (or high-watermark) `u64`;
//! * [`Histogram`] — fixed exponential microsecond buckets with lock-free
//!   `observe`, plus `p50`/`p95`/`p99`/`max` readout.
//!
//! A [`Registry`] owns the name → handle map and renders everything in the
//! Prometheus text exposition format (`# HELP`/`# TYPE` headers, cumulative
//! `_bucket{le="…"}` series, `_sum`/`_count`).  Handles are `Arc`s: the hot
//! path clones one once and never touches the registry lock again.  Metric
//! handles created elsewhere (a WAL histogram owned by the store, a
//! queue-wait histogram owned by the worker pool) can be *adopted* into a
//! registry so one `!metrics` scrape covers every layer.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value (or high-watermark) gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raise the value to `value` if it is higher (high-watermark
    /// semantics).
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds: a 1-2.5-5 ladder
/// from 1 µs to 10 s.  An implicit `+Inf` bucket catches the rest.
pub const DEFAULT_LATENCY_BOUNDS_MICROS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket histogram with lock-free observation.
///
/// `observe` is three relaxed atomic adds and one `fetch_max`; readout
/// walks the buckets.  Concurrent readers may see a bucket updated before
/// the matching `count`/`sum` — readouts are approximate-point-in-time,
/// which is all a scrape needs.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over [`DEFAULT_LATENCY_BOUNDS_MICROS`].
    pub fn latency() -> Self {
        Self::with_bounds(DEFAULT_LATENCY_BOUNDS_MICROS)
    }

    /// A histogram over explicit ascending bucket upper bounds.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let slot = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observed value (exact, unlike the bucketed quantiles).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to the upper bound of the
    /// bucket containing it (the exact [`Histogram::max`] for the overflow
    /// bucket).  Returns 0 with no observations.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket.load(Ordering::Relaxed));
            if cumulative >= target {
                return match self.bounds.get(slot) {
                    Some(&bound) => bound,
                    None => self.max(),
                };
            }
        }
        self.max()
    }

    /// Median (bucket-resolved).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket-resolved).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket-resolved).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: every label combination under one name.
#[derive(Debug)]
struct Family {
    help: String,
    /// Rendered label string (`label="value",…`, possibly empty) → handle.
    series: BTreeMap<String, Handle>,
}

/// The metric registry: name → family map plus the Prometheus renderer.
///
/// Registration is get-or-create keyed on `(name, labels)`; re-registering
/// returns the existing handle, so callers need no startup ordering.  The
/// internal lock guards only (de)registration and rendering — never the
/// instruments themselves.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Render a label set into its stable exposition form (sorted by caller,
/// values escaped per the Prometheus text format).
fn label_string(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (index, (key, value)) in labels.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], make: Handle) -> Handle {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        family
            .series
            .entry(label_string(labels))
            .or_insert(make)
            .clone()
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let handle = self.register(
            name,
            help,
            labels,
            Handle::Counter(Arc::new(Counter::new())),
        );
        match handle {
            Handle::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = self.register(name, help, labels, Handle::Gauge(Arc::new(Gauge::new())));
        match handle {
            Handle::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the latency histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let handle = self.register(
            name,
            help,
            labels,
            Handle::Histogram(Arc::new(Histogram::latency())),
        );
        match handle {
            Handle::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Adopt an externally-owned counter under `name{labels}` (idempotent;
    /// an already-registered series keeps its original handle).
    pub fn adopt_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Arc<Counter>,
    ) {
        self.register(name, help, labels, Handle::Counter(counter));
    }

    /// Adopt an externally-owned gauge under `name{labels}`.
    pub fn adopt_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: Arc<Gauge>) {
        self.register(name, help, labels, Handle::Gauge(gauge));
    }

    /// Adopt an externally-owned histogram under `name{labels}`.
    pub fn adopt_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.register(name, help, labels, Handle::Histogram(histogram));
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format, families sorted by name, series sorted by label string.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = family
                .series
                .values()
                .next()
                .map(Handle::kind)
                .unwrap_or("gauge");
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, handle) in family.series.iter() {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels), c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels), g.get());
                    }
                    Handle::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, histogram: &Histogram) {
    let counts = histogram.bucket_counts();
    let mut cumulative = 0u64;
    for (slot, count) in counts.iter().enumerate() {
        cumulative = cumulative.saturating_add(*count);
        let le = match histogram.bounds().get(slot) {
            Some(bound) => bound.to_string(),
            None => "+Inf".to_string(),
        };
        let series = if labels.is_empty() {
            format!("le=\"{le}\"")
        } else {
            format!("{labels},le=\"{le}\"")
        };
        let _ = writeln!(out, "{name}_bucket{{{series}}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_sum{} {}", braced(labels), histogram.sum());
    let _ = writeln!(out, "{name}_count{} {}", braced(labels), histogram.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);

        let gauge = Gauge::new();
        gauge.set(7);
        gauge.set_max(3);
        assert_eq!(gauge.get(), 7);
        gauge.set_max(11);
        assert_eq!(gauge.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let histogram = Histogram::with_bounds(&[10, 100, 1000]);
        for value in [1, 5, 10, 50, 200, 5000] {
            histogram.observe(value);
        }
        assert_eq!(histogram.count(), 6);
        assert_eq!(histogram.sum(), 5266);
        assert_eq!(histogram.max(), 5000);
        // Buckets: ≤10 → 3, ≤100 → 1, ≤1000 → 1, +Inf → 1.
        assert_eq!(histogram.bucket_counts(), vec![3, 1, 1, 1]);
        assert_eq!(histogram.p50(), 10);
        assert_eq!(histogram.quantile(1.0), 5000);
        assert_eq!(histogram.p99(), 5000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let histogram = Histogram::latency();
        assert_eq!(histogram.p50(), 0);
        assert_eq!(histogram.p99(), 0);
        assert_eq!(histogram.max(), 0);
    }

    #[test]
    fn histogram_concurrent_writers_sum_exactly() {
        let histogram = Arc::new(Histogram::latency());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let histogram = Arc::clone(&histogram);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        histogram.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(histogram.count(), 8000);
        let expected: u64 = (0..8u64)
            .map(|t| (0..1000).map(|i| t * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(histogram.sum(), expected);
        assert_eq!(histogram.bucket_counts().iter().sum::<u64>(), 8000);
    }

    #[test]
    fn registry_get_or_register_returns_same_handle() {
        let registry = Registry::new();
        let a = registry.counter("ontodq_test_total", "help", &[("k", "v")]);
        let b = registry.counter("ontodq_test_total", "help", &[("k", "v")]);
        a.inc();
        assert_eq!(b.get(), 1);
        let other = registry.counter("ontodq_test_total", "help", &[("k", "w")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn render_prometheus_shape() {
        let registry = Registry::new();
        registry
            .counter(
                "ontodq_requests_total",
                "Requests served.",
                &[("verb", "query")],
            )
            .add(3);
        registry
            .gauge("ontodq_queue_depth", "Jobs queued.", &[])
            .set(2);
        let histogram = registry.histogram("ontodq_latency_micros", "Latency.", &[]);
        histogram.observe(7);
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP ontodq_requests_total Requests served."));
        assert!(text.contains("# TYPE ontodq_requests_total counter"));
        assert!(text.contains("ontodq_requests_total{verb=\"query\"} 3"));
        assert!(text.contains("# TYPE ontodq_queue_depth gauge"));
        assert!(text.contains("ontodq_queue_depth 2"));
        assert!(text.contains("# TYPE ontodq_latency_micros histogram"));
        assert!(text.contains("ontodq_latency_micros_bucket{le=\"10\"} 1"));
        assert!(text.contains("ontodq_latency_micros_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ontodq_latency_micros_sum 7"));
        assert!(text.contains("ontodq_latency_micros_count 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
