//! # ontodq-obs
//!
//! The workspace's observability layer, `std`-only like everything else:
//!
//! * a **clock seam** ([`Clock`], [`MonotonicClock`], [`VirtualClock`]) —
//!   every latency measurement and `micros=` response field reads time
//!   through an injected clock, so deterministic tests and the
//!   record/replay harness swap in a virtual clock and get byte-identical
//!   output with no masking;
//! * **lock-free instruments** ([`Counter`], [`Gauge`], [`Histogram`] with
//!   `p50`/`p95`/`p99`/`max` readout over fixed exponential buckets);
//! * a **[`Registry`]** mapping stable metric names (plus label sets) to
//!   instruments and rendering the whole state in the Prometheus text
//!   exposition format (the server's `!metrics` command);
//! * a **span ring** ([`SpanLog`], [`SpanRecord`]) — a bounded buffer of
//!   recent measured spans, backing the server's slow-query log (`!slow`).
//!
//! See `docs/observability.md` for the metric name inventory and the
//! threading of this crate through chase, store and server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{frozen, monotonic, Clock, MonotonicClock, SharedClock, VirtualClock};
pub use metrics::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BOUNDS_MICROS};
pub use trace::{Span, SpanLog, SpanRecord};
