//! Atoms: relational atoms, built-in comparison atoms, and conjunctions.

use crate::term::{Term, Variable};
use ontodq_relational::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A relational atom `P(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms, in positional order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(predicate: impl Into<String>, terms: Vec<Term>) -> Self {
        Self {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Construct an atom whose arguments are all variables, named as given.
    pub fn with_vars(predicate: impl Into<String>, vars: &[&str]) -> Self {
        Self::new(predicate, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The distinct variables appearing in the atom, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// The constants appearing in the atom.
    pub fn constants(&self) -> Vec<Value> {
        self.terms
            .iter()
            .filter_map(|t| t.as_const().cloned())
            .collect()
    }

    /// `true` when every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// The positions (0-based) at which `var` occurs.
    pub fn positions_of(&self, var: &Variable) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(var)).then_some(i))
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators available in built-in atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompareOp {
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// Evaluate the comparison on two values.
    ///
    /// Equality and inequality are defined on all values (labeled nulls are
    /// equal only to themselves); the order comparisons require two
    /// constants of comparable kinds (numeric with numeric, string with
    /// string, time with time) and return `None` otherwise, which callers
    /// treat as "condition not satisfied".
    pub fn eval(self, left: &Value, right: &Value) -> Option<bool> {
        match self {
            CompareOp::Eq => Some(left == right),
            CompareOp::Neq => Some(left != right),
            _ => {
                let ordering = match (left, right) {
                    (Value::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
                    (Value::Null(_), _) | (_, Value::Null(_)) => return None,
                    _ => {
                        let (a, b) = (left.numeric()?, right.numeric()?);
                        a.partial_cmp(&b)?
                    }
                };
                Some(match self {
                    CompareOp::Lt => ordering.is_lt(),
                    CompareOp::Le => ordering.is_le(),
                    CompareOp::Gt => ordering.is_gt(),
                    CompareOp::Ge => ordering.is_ge(),
                    CompareOp::Eq | CompareOp::Neq => unreachable!(),
                })
            }
        }
    }

    /// The textual form used by the parser and printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Neq => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A built-in comparison atom `t1 op t2`, used in rule bodies for selection
/// conditions (e.g. the doctor's time window `Sep/5-11:45 <= t`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparison {
    /// Left-hand term.
    pub left: Term,
    /// The operator.
    pub op: CompareOp,
    /// Right-hand term.
    pub right: Term,
}

impl Comparison {
    /// Construct a comparison.
    pub fn new(left: Term, op: CompareOp, right: Term) -> Self {
        Self { left, op, right }
    }

    /// The distinct variables in the comparison.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for t in [&self.left, &self.right] {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A conjunction of literals forming a rule body: positive relational atoms,
/// negated relational atoms (used only in negative constraints, e.g. the
/// referential constraint `⊥ ← PatientUnit(u,d;p), ¬Unit(u)`), and built-in
/// comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Conjunction {
    /// Positive relational atoms.
    pub atoms: Vec<Atom>,
    /// Negated relational atoms.
    pub negated: Vec<Atom>,
    /// Built-in comparison atoms.
    pub comparisons: Vec<Comparison>,
}

impl Conjunction {
    /// A conjunction of positive atoms only.
    pub fn positive(atoms: Vec<Atom>) -> Self {
        Self {
            atoms,
            negated: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// An empty conjunction (true).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add a positive atom (builder style).
    pub fn and(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Add a negated atom (builder style).
    pub fn and_not(mut self, atom: Atom) -> Self {
        self.negated.push(atom);
        self
    }

    /// Add a comparison (builder style).
    pub fn and_compare(mut self, cmp: Comparison) -> Self {
        self.comparisons.push(cmp);
        self
    }

    /// All distinct variables, in first-occurrence order (positive atoms
    /// first, then negated atoms, then comparisons).
    pub fn variables(&self) -> Vec<Variable> {
        let mut out: Vec<Variable> = Vec::new();
        let mut push = |v: Variable| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        for a in self.atoms.iter().chain(self.negated.iter()) {
            for v in a.variables() {
                push(v);
            }
        }
        for c in &self.comparisons {
            for v in c.variables() {
                push(v);
            }
        }
        out
    }

    /// Variables appearing in more than one *positive* atom occurrence or
    /// more than once within a positive atom — the "shared"/join variables
    /// relevant to stickiness analysis.
    pub fn repeated_variables(&self) -> Vec<Variable> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
        for atom in &self.atoms {
            for term in &atom.terms {
                if let Term::Var(v) = term {
                    *counts.entry(*v).or_default() += 1;
                }
            }
        }
        counts
            .into_iter()
            .filter_map(|(v, n)| (n > 1).then_some(v))
            .collect()
    }

    /// `true` when the conjunction has no literals at all.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty() && self.negated.is_empty() && self.comparisons.is_empty()
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.atoms.len() + self.negated.len() + self.comparisons.len()
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ", ")
            }
        };
        for a in &self.atoms {
            sep(f)?;
            write!(f, "{a}")?;
        }
        for a in &self.negated {
            sep(f)?;
            write!(f, "not {a}")?;
        }
        for c in &self.comparisons {
            sep(f)?;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_relational::NullId;

    fn patient_ward() -> Atom {
        Atom::with_vars("PatientWard", &["w", "d", "p"])
    }

    #[test]
    fn atom_variables_and_positions() {
        let a = Atom::new("UnitWard", vec![Term::var("u"), Term::var("u")]);
        assert_eq!(a.variables(), vec![Variable::new("u")]);
        assert_eq!(a.positions_of(&Variable::new("u")), vec![0, 1]);
        assert_eq!(a.arity(), 2);
        assert!(!a.is_ground());
    }

    #[test]
    fn ground_atom_detection() {
        let g = Atom::new("Unit", vec![Term::constant("Standard")]);
        assert!(g.is_ground());
        assert_eq!(g.constants(), vec![Value::str("Standard")]);
    }

    #[test]
    fn atom_display() {
        assert_eq!(patient_ward().to_string(), "PatientWard(w, d, p)");
        let mixed = Atom::new(
            "PatientUnit",
            vec![
                Term::constant("Standard"),
                Term::var("d"),
                Term::constant("Tom Waits"),
            ],
        );
        assert_eq!(mixed.to_string(), "PatientUnit(Standard, d, \"Tom Waits\")");
    }

    #[test]
    fn compare_eval_equality_on_all_kinds() {
        assert_eq!(
            CompareOp::Eq.eval(&Value::str("B1"), &Value::str("B1")),
            Some(true)
        );
        assert_eq!(
            CompareOp::Neq.eval(&Value::str("B1"), &Value::str("B2")),
            Some(true)
        );
        assert_eq!(
            CompareOp::Eq.eval(&Value::Null(NullId(0)), &Value::Null(NullId(0))),
            Some(true)
        );
        assert_eq!(
            CompareOp::Eq.eval(&Value::Null(NullId(0)), &Value::str("x")),
            Some(false)
        );
    }

    #[test]
    fn compare_eval_order_on_numbers_and_times() {
        assert_eq!(
            CompareOp::Lt.eval(&Value::int(1), &Value::int(2)),
            Some(true)
        );
        assert_eq!(
            CompareOp::Ge.eval(&Value::double(2.0), &Value::int(2)),
            Some(true)
        );
        let a = Value::parse_time("Sep/5-11:45").unwrap();
        let b = Value::parse_time("Sep/5-12:10").unwrap();
        assert_eq!(CompareOp::Le.eval(&a, &b), Some(true));
        assert_eq!(CompareOp::Gt.eval(&a, &b), Some(false));
    }

    #[test]
    fn compare_eval_order_on_strings_and_incomparables() {
        assert_eq!(
            CompareOp::Lt.eval(&Value::str("a"), &Value::str("b")),
            Some(true)
        );
        assert_eq!(CompareOp::Lt.eval(&Value::str("a"), &Value::int(1)), None);
        assert_eq!(
            CompareOp::Lt.eval(&Value::Null(NullId(1)), &Value::int(1)),
            None
        );
    }

    #[test]
    fn conjunction_builder_and_variables() {
        let conj = Conjunction::positive(vec![patient_ward()])
            .and(Atom::with_vars("UnitWard", &["u", "w"]))
            .and_not(Atom::with_vars("Closed", &["u"]))
            .and_compare(Comparison::new(
                Term::var("d"),
                CompareOp::Ge,
                Term::constant(Value::parse_time("Sep/5").unwrap()),
            ));
        let vars = conj.variables();
        assert_eq!(
            vars,
            vec![
                Variable::new("w"),
                Variable::new("d"),
                Variable::new("p"),
                Variable::new("u"),
            ]
        );
        assert_eq!(conj.len(), 4);
        assert!(!conj.is_empty());
    }

    #[test]
    fn repeated_variables_counts_positive_atoms_only() {
        let conj = Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
        ])
        .and_not(Atom::with_vars("Closed", &["u"]));
        assert_eq!(conj.repeated_variables(), vec![Variable::new("w")]);
    }

    #[test]
    fn conjunction_display() {
        let conj = Conjunction::positive(vec![patient_ward()])
            .and_not(Atom::with_vars("Unit", &["u"]))
            .and_compare(Comparison::new(
                Term::var("p"),
                CompareOp::Eq,
                Term::constant("Tom Waits"),
            ));
        assert_eq!(
            conj.to_string(),
            "PatientWard(w, d, p), not Unit(u), p = \"Tom Waits\""
        );
    }
}
