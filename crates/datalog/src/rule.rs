//! Datalog± rules: tuple-generating dependencies (TGDs), equality-generating
//! dependencies (EGDs), negative constraints, and facts.
//!
//! These are the rule forms (1)–(4) and (10) of the paper:
//!
//! * form (1): referential negative constraints `⊥ ← R(ē;ā), ¬K(e)`,
//! * form (2): dimensional EGDs `x = x' ← R_i(…), …, D_n(…), …`,
//! * form (3): dimensional negative constraints `⊥ ← R_i(…), …, D_n(…), …`,
//! * form (4): dimensional rules (TGDs) `∃ā_z R_k(ē_k;ā_k) ← R_i(…), …, D_n(…), …`,
//! * form (10): downward rules with existential *categorical* variables and
//!   parent–child atoms in the head.

use crate::atom::{Atom, Conjunction};
use crate::term::Variable;
use std::collections::BTreeSet;
use std::fmt;

/// A tuple-generating dependency: `∃z̄ head ← body`, where the existential
/// variables `z̄` are exactly the head variables that do not occur in the
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Optional rule label (used in diagnostics and chase provenance).
    pub label: Option<String>,
    /// The body conjunction.  TGD bodies contain no negated atoms.
    pub body: Conjunction,
    /// The head atoms (a conjunction; usually a single atom, but form (10)
    /// heads pair a categorical atom with parent–child atoms).
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Construct a TGD with a single head atom.
    pub fn new(body: Conjunction, head: Atom) -> Self {
        Self {
            label: None,
            body,
            head: vec![head],
        }
    }

    /// Construct a TGD with a conjunctive head.
    pub fn with_heads(body: Conjunction, head: Vec<Atom>) -> Self {
        Self {
            label: None,
            body,
            head,
        }
    }

    /// Attach a label (builder style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Variables occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<Variable> {
        self.body.variables().into_iter().collect()
    }

    /// Variables occurring in the head.
    pub fn head_variables(&self) -> BTreeSet<Variable> {
        self.head.iter().flat_map(|a| a.variables()).collect()
    }

    /// The *frontier*: variables shared between body and head.
    pub fn frontier(&self) -> BTreeSet<Variable> {
        self.body_variables()
            .intersection(&self.head_variables())
            .cloned()
            .collect()
    }

    /// The existential variables: head variables not occurring in the body.
    pub fn existential_variables(&self) -> BTreeSet<Variable> {
        self.head_variables()
            .difference(&self.body_variables())
            .cloned()
            .collect()
    }

    /// `true` when the rule has no existential variables (a plain Datalog
    /// rule, possibly with a conjunctive head).
    pub fn is_full(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// `true` when the body consists of a single positive atom (the *linear*
    /// shape).
    pub fn is_linear(&self) -> bool {
        self.body.atoms.len() == 1 && self.body.negated.is_empty()
    }

    /// `true` when some body atom contains every body variable (the *guarded*
    /// shape).
    pub fn is_guarded(&self) -> bool {
        let body_vars = self.body_variables();
        self.body.atoms.iter().any(|a| {
            let atom_vars: BTreeSet<Variable> = a.variables().into_iter().collect();
            body_vars.is_subset(&atom_vars)
        })
    }

    /// Predicates appearing in the body (positive atoms only).
    pub fn body_predicates(&self) -> Vec<&str> {
        self.body
            .atoms
            .iter()
            .map(|a| a.predicate.as_str())
            .collect()
    }

    /// Predicates appearing in the head.
    pub fn head_predicates(&self) -> Vec<&str> {
        self.head.iter().map(|a| a.predicate.as_str()).collect()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, atom) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        write!(f, " :- {}.", self.body)
    }
}

/// An equality-generating dependency: `x = y ← body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    /// Optional rule label.
    pub label: Option<String>,
    /// The body conjunction.
    pub body: Conjunction,
    /// Left side of the head equality (a body variable).
    pub left: Variable,
    /// Right side of the head equality (a body variable).
    pub right: Variable,
}

impl Egd {
    /// Construct an EGD.
    pub fn new(body: Conjunction, left: Variable, right: Variable) -> Self {
        Self {
            label: None,
            body,
            left,
            right,
        }
    }

    /// Attach a label (builder style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Variables occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<Variable> {
        self.body.variables().into_iter().collect()
    }

    /// `true` when both equated variables occur in the body (well-formed).
    pub fn is_well_formed(&self) -> bool {
        let vars = self.body_variables();
        vars.contains(&self.left) && vars.contains(&self.right)
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {} :- {}.", self.left, self.right, self.body)
    }
}

/// A negative constraint: `⊥ ← body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeConstraint {
    /// Optional rule label.
    pub label: Option<String>,
    /// The body conjunction; may contain negated atoms (form (1)).
    pub body: Conjunction,
}

impl NegativeConstraint {
    /// Construct a negative constraint.
    pub fn new(body: Conjunction) -> Self {
        Self { label: None, body }
    }

    /// Attach a label (builder style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

impl fmt::Display for NegativeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "! :- {}.", self.body)
    }
}

/// A ground fact `P(c1, …, cn).`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact(pub Atom);

impl Fact {
    /// Construct a fact; the atom must be ground.
    pub fn new(atom: Atom) -> Option<Self> {
        atom.is_ground().then_some(Fact(atom))
    }

    /// The underlying atom.
    pub fn atom(&self) -> &Atom {
        &self.0
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.", self.0)
    }
}

/// A ground retraction `-P(c1, …, cn).` — a request to delete the fact and
/// incrementally withdraw its consequences (delete-and-rederive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retraction(pub Atom);

impl Retraction {
    /// Construct a retraction; the atom must be ground.
    pub fn new(atom: Atom) -> Option<Self> {
        atom.is_ground().then_some(Retraction(atom))
    }

    /// The underlying atom.
    pub fn atom(&self) -> &Atom {
        &self.0
    }
}

impl fmt::Display for Retraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-{}.", self.0)
    }
}

/// A conditional delete `-Edge(x, y) :- Banned(x).` — every instantiation of
/// the head reachable through a body match is retracted.  Head variables not
/// bound by the body act as wildcards: the example deletes *all* edges out of
/// a banned node, whatever their target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionalDelete {
    /// Optional rule label.
    pub label: Option<String>,
    /// The single head atom naming what to delete.
    pub head: Atom,
    /// The body conjunction; may contain negated atoms and comparisons.
    pub body: Conjunction,
}

impl ConditionalDelete {
    /// Construct a conditional delete.
    pub fn new(body: Conjunction, head: Atom) -> Self {
        Self {
            label: None,
            head,
            body,
        }
    }

    /// Attach a label (builder style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Head variables not bound by any positive body atom (the wildcard
    /// positions).
    pub fn wildcard_variables(&self) -> BTreeSet<Variable> {
        let body_vars: BTreeSet<Variable> = self.body.variables().into_iter().collect();
        self.head
            .variables()
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .collect()
    }
}

impl fmt::Display for ConditionalDelete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-{} :- {}.", self.head, self.body)
    }
}

/// Any Datalog± rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// A tuple-generating dependency.
    Tgd(Tgd),
    /// An equality-generating dependency.
    Egd(Egd),
    /// A negative constraint.
    Constraint(NegativeConstraint),
    /// A ground fact.
    Fact(Fact),
    /// A ground retraction (`-P(ā).`).
    Retract(Retraction),
    /// A conditional delete (`-P(x̄) :- body.`).
    Delete(ConditionalDelete),
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Tgd(r) => write!(f, "{r}"),
            Rule::Egd(r) => write!(f, "{r}"),
            Rule::Constraint(r) => write!(f, "{r}"),
            Rule::Fact(r) => write!(f, "{r}"),
            Rule::Retract(r) => write!(f, "{r}"),
            Rule::Delete(r) => write!(f, "{r}"),
        }
    }
}

/// Convenience constructor for the common "head :- body atoms" TGD shape.
pub fn tgd(head: Atom, body_atoms: Vec<Atom>) -> Tgd {
    Tgd::new(Conjunction::positive(body_atoms), head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CompareOp, Comparison};
    use crate::term::Term;

    /// Rule (7) of the paper: upward navigation from PatientWard to
    /// PatientUnit.
    fn rule7() -> Tgd {
        tgd(
            Atom::with_vars("PatientUnit", &["u", "d", "p"]),
            vec![
                Atom::with_vars("PatientWard", &["w", "d", "p"]),
                Atom::with_vars("UnitWard", &["u", "w"]),
            ],
        )
    }

    /// Rule (8) of the paper: downward navigation with an existential
    /// non-categorical variable `z` for the unknown shift.
    fn rule8() -> Tgd {
        tgd(
            Atom::with_vars("Shifts", &["w", "d", "n", "z"]),
            vec![
                Atom::with_vars("WorkingSchedules", &["u", "d", "n", "t"]),
                Atom::with_vars("UnitWard", &["u", "w"]),
            ],
        )
    }

    /// Rule (9) of the paper: downward navigation with an existential
    /// categorical variable `u` and a parent–child atom in the head.
    fn rule9() -> Tgd {
        Tgd::with_heads(
            Conjunction::positive(vec![Atom::with_vars("DischargePatients", &["i", "d", "p"])]),
            vec![
                Atom::with_vars("InstitutionUnit", &["i", "u"]),
                Atom::with_vars("PatientUnit", &["u", "d", "p"]),
            ],
        )
    }

    #[test]
    fn rule7_has_no_existentials_and_is_not_linear() {
        let r = rule7();
        assert!(r.is_full());
        assert!(r.existential_variables().is_empty());
        assert!(!r.is_linear());
        assert_eq!(
            r.frontier(),
            ["u", "d", "p"].iter().map(|v| Variable::new(*v)).collect()
        );
    }

    #[test]
    fn rule8_existential_is_z() {
        let r = rule8();
        assert!(!r.is_full());
        assert_eq!(
            r.existential_variables(),
            std::iter::once(Variable::new("z")).collect()
        );
    }

    #[test]
    fn rule9_existential_is_categorical_u() {
        let r = rule9();
        assert_eq!(
            r.existential_variables(),
            std::iter::once(Variable::new("u")).collect()
        );
        assert_eq!(r.head_predicates(), vec!["InstitutionUnit", "PatientUnit"]);
        assert!(r.is_linear());
        assert!(r.is_guarded());
    }

    #[test]
    fn guardedness_detection() {
        // Guard: the first atom contains every body variable.
        let guarded = tgd(
            Atom::with_vars("H", &["x"]),
            vec![
                Atom::with_vars("G", &["x", "y", "z"]),
                Atom::with_vars("P", &["x", "y"]),
            ],
        );
        assert!(guarded.is_guarded());
        // Rule (7) is not guarded: no single atom holds {w, d, p, u}.
        assert!(!rule7().is_guarded());
    }

    #[test]
    fn egd_well_formedness() {
        // Rule (6): all thermometers in a unit are of the same type.
        let body = Conjunction::positive(vec![
            Atom::with_vars("Thermometer", &["w", "t", "n"]),
            Atom::with_vars("Thermometer", &["w2", "t2", "n2"]),
            Atom::with_vars("UnitWard", &["u", "w"]),
            Atom::with_vars("UnitWard", &["u", "w2"]),
        ]);
        let egd = Egd::new(body, Variable::new("t"), Variable::new("t2"));
        assert!(egd.is_well_formed());
        let bad = Egd::new(Conjunction::empty(), Variable::new("a"), Variable::new("b"));
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn constraint_display() {
        // The inter-dimensional constraint from Example 4.
        let nc = NegativeConstraint::new(Conjunction::positive(vec![
            Atom::with_vars("PatientWard", &["w", "d", "p"]),
            Atom::new(
                "UnitWard",
                vec![Term::constant("Intensive"), Term::var("w")],
            ),
            Atom::new(
                "MonthDay",
                vec![Term::constant("August/2005"), Term::var("d")],
            ),
        ]));
        let rendered = nc.to_string();
        assert!(rendered.starts_with("! :- PatientWard(w, d, p)"));
        assert!(rendered.contains("Intensive"));
    }

    #[test]
    fn fact_requires_ground_atom() {
        assert!(Fact::new(Atom::with_vars("Unit", &["u"])).is_none());
        let f = Fact::new(Atom::new("Unit", vec![Term::constant("Standard")])).unwrap();
        assert_eq!(f.to_string(), "Unit(Standard).");
        assert_eq!(f.atom().predicate, "Unit");
    }

    #[test]
    fn tgd_display_round_trip_shape() {
        let r = rule7();
        assert_eq!(
            r.to_string(),
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w)."
        );
        let with_cmp = Tgd::new(
            Conjunction::positive(vec![Atom::with_vars("M", &["t", "p", "v"])]).and_compare(
                Comparison::new(Term::var("p"), CompareOp::Eq, Term::constant("Tom Waits")),
            ),
            Atom::with_vars("Q", &["t", "p", "v"]),
        );
        assert_eq!(
            with_cmp.to_string(),
            "Q(t, p, v) :- M(t, p, v), p = \"Tom Waits\"."
        );
    }

    #[test]
    fn rule_enum_display_dispatch() {
        let r = Rule::Tgd(rule7());
        assert!(r.to_string().contains(":-"));
        let f = Rule::Fact(Fact::new(Atom::new("Unit", vec![Term::constant("Standard")])).unwrap());
        assert_eq!(f.to_string(), "Unit(Standard).");
    }

    #[test]
    fn retraction_requires_ground_atom() {
        assert!(Retraction::new(Atom::with_vars("Unit", &["u"])).is_none());
        let r = Retraction::new(Atom::new("Unit", vec![Term::constant("Standard")])).unwrap();
        assert_eq!(r.to_string(), "-Unit(Standard).");
        assert_eq!(r.atom().predicate, "Unit");
    }

    #[test]
    fn conditional_delete_wildcards_are_unbound_head_variables() {
        let del = ConditionalDelete::new(
            Conjunction::positive(vec![Atom::with_vars("Banned", &["x"])]),
            Atom::with_vars("Edge", &["x", "y"]),
        );
        assert_eq!(
            del.wildcard_variables(),
            std::iter::once(Variable::new("y")).collect()
        );
        assert_eq!(del.to_string(), "-Edge(x, y) :- Banned(x).");
    }

    #[test]
    fn labels_are_carried() {
        let r = rule7().labeled("rule-7");
        assert_eq!(r.label.as_deref(), Some("rule-7"));
        let e =
            Egd::new(Conjunction::empty(), Variable::new("x"), Variable::new("y")).labeled("egd-6");
        assert_eq!(e.label.as_deref(), Some("egd-6"));
        let c = NegativeConstraint::new(Conjunction::empty()).labeled("nc-1");
        assert_eq!(c.label.as_deref(), Some("nc-1"));
    }
}
