//! Terms and variables.
//!
//! A [`Term`] is either a variable or a constant ([`Value`], which includes
//! labeled nulls).  Terms appear in atoms; variables are shared across the
//! body and head of a rule to express joins and value propagation.

use ontodq_relational::{Sym, Value};
use std::fmt;

/// A variable, identified by name.
///
/// By convention (and by the parser) variable names start with a lowercase
/// letter or an underscore, e.g. `u`, `d`, `p`, `thermometer_type`.
///
/// Variable names are interned in the global symbol table, so a `Variable`
/// is a `Copy` handle: cloning assignments and unifiers in the join hot
/// path never allocates for the keys.  Equality compares interned ids; the
/// order is the lexicographic order of the names (as it was when names
/// were owned strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variable(Sym);

impl Variable {
    /// Construct a variable.
    pub fn new(name: impl AsRef<str>) -> Self {
        Variable(Sym::new(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }

    /// A fresh variable derived from this one, used when renaming apart
    /// (standardizing variables before unification).
    pub fn renamed(&self, suffix: usize) -> Variable {
        Variable::new(format!("{}#{}", self.name(), suffix))
    }

    /// The interned id of the variable's name — a process-stable total
    /// order usable without resolving the name (no interner lock).  Id
    /// order is first-intern order, not lexicographic; hot-path containers
    /// (e.g. [`crate::Assignment`]) sort by it.
    pub(crate) fn sym_id(&self) -> u32 {
        self.0.id()
    }
}

impl PartialOrd for Variable {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Variable {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.name().cmp(other.name())
        }
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

/// A term: a variable or a constant (domain value or labeled null).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Variable),
    /// A constant; labeled nulls are constants from the term perspective.
    Const(Value),
}

impl Term {
    /// Variable-term constructor.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Variable::new(name))
    }

    /// Constant-term constructor.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// The variable, when the term is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, when the term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// `true` when the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` when the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(sym)) => {
                // Strings that could be read back as variables or that contain
                // separators are quoted; this keeps parse∘print the identity.
                let s = sym.as_str();
                if s.chars()
                    .next()
                    .map(|c| c.is_ascii_uppercase())
                    .unwrap_or(false)
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    write!(f, "{s}")
                } else {
                    write!(f, "\"{s}\"")
                }
            }
            Term::Const(v) => write!(f, "{v}"),
        }
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_relational::NullId;

    #[test]
    fn variable_basics() {
        let v = Variable::new("u");
        assert_eq!(v.name(), "u");
        assert_eq!(v.to_string(), "u");
        assert_eq!(v.renamed(3).name(), "u#3");
    }

    #[test]
    fn term_constructors_and_accessors() {
        let var = Term::var("w");
        assert!(var.is_var());
        assert!(!var.is_const());
        assert_eq!(var.as_var(), Some(&Variable::new("w")));
        assert_eq!(var.as_const(), None);

        let cons = Term::constant("W1");
        assert!(cons.is_const());
        assert_eq!(cons.as_const(), Some(&Value::str("W1")));
        assert_eq!(cons.as_var(), None);
    }

    #[test]
    fn display_quotes_only_when_needed() {
        assert_eq!(Term::constant("W1").to_string(), "W1");
        assert_eq!(Term::constant("Tom Waits").to_string(), "\"Tom Waits\"");
        assert_eq!(Term::constant("standard").to_string(), "\"standard\"");
        assert_eq!(Term::var("u").to_string(), "u");
        assert_eq!(Term::constant(Value::int(42)).to_string(), "42");
        assert_eq!(Term::Const(Value::Null(NullId(2))).to_string(), "⊥2");
    }

    #[test]
    fn conversions() {
        let t: Term = Variable::new("x").into();
        assert!(t.is_var());
        let t: Term = Value::int(1).into();
        assert!(t.is_const());
    }
}
