//! # ontodq-datalog
//!
//! The Datalog± language layer of `ontodq`, the Rust reproduction of
//! *"Extending Contexts with Ontologies for Multidimensional Data Quality
//! Assessment"* (Milani, Bertossi, Ariyan; ICDE 2014).
//!
//! Datalog± extends plain Datalog with existential quantification in rule
//! heads (tuple-generating dependencies, TGDs), equality-generating
//! dependencies (EGDs) and negative constraints — exactly the rule forms the
//! paper uses to express dimensional rules and dimensional constraints
//! (forms (1)–(4) and (10)).  This crate provides:
//!
//! * the term/atom/rule/program representation ([`term`], [`atom`], [`rule`],
//!   [`program`]),
//! * ground assignments and unifiers ([`substitution`]),
//! * a concrete text syntax with a parser and round-tripping printers
//!   ([`parser`]),
//! * predicate and position dependency graphs ([`graph`]),
//! * the syntactic class analyses that the paper's tractability claims rest
//!   on — sticky, weakly sticky, linear, guarded, weakly guarded, weakly
//!   acyclic — and the EGD separability check ([`analysis`]).
//!
//! Chasing programs over data and answering queries live in `ontodq-chase`
//! and `ontodq-qa`; compiling multidimensional ontologies into programs lives
//! in `ontodq-mdm`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod analysis;
pub mod atom;
pub mod graph;
pub mod parser;
pub mod program;
pub mod rule;
pub mod substitution;
pub mod term;

pub use analysis::lint::{
    lint, lint_with, Diagnostic, LintReport, RuleRef, Severity, TerminationCertificate,
};
pub use atom::{Atom, CompareOp, Comparison, Conjunction};
pub use parser::{parse_program, parse_rule, ParseError};
pub use program::{Position, Program};
pub use rule::{tgd, ConditionalDelete, Egd, Fact, NegativeConstraint, Retraction, Rule, Tgd};
pub use substitution::{Assignment, Unifier};
pub use term::{Term, Variable};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Generate a predicate name (uppercase first letter).
    fn arb_predicate() -> impl Strategy<Value = String> {
        "[A-Z][a-zA-Z0-9]{0,6}"
    }

    /// Generate a variable name (lowercase first letter).
    fn arb_varname() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,4}"
    }

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            arb_varname().prop_map(Term::var),
            "[A-Z][a-zA-Z0-9_]{0,8}".prop_map(Term::constant),
            any::<i32>().prop_map(|i| Term::constant(ontodq_relational::Value::int(i as i64))),
        ]
    }

    fn arb_atom() -> impl Strategy<Value = Atom> {
        (arb_predicate(), proptest::collection::vec(arb_term(), 1..4))
            .prop_map(|(p, terms)| Atom::new(p, terms))
    }

    fn arb_tgd() -> impl Strategy<Value = Tgd> {
        (proptest::collection::vec(arb_atom(), 1..3), arb_atom())
            .prop_map(|(body, head)| Tgd::new(Conjunction::positive(body), head))
    }

    proptest! {
        /// Printing a TGD and parsing it back yields the same rule.
        #[test]
        fn tgd_print_parse_round_trip(tgd in arb_tgd()) {
            let printed = tgd.to_string();
            let reparsed = parse_rule(&printed).unwrap();
            match reparsed {
                Rule::Tgd(t) => prop_assert_eq!(t, tgd),
                other => prop_assert!(false, "unexpected rule kind: {:?}", other),
            }
        }

        /// Variables of an atom are a subset of its terms.
        #[test]
        fn atom_variables_subset_of_terms(atom in arb_atom()) {
            let vars = atom.variables();
            prop_assert!(vars.len() <= atom.arity());
            for v in vars {
                prop_assert!(atom.terms.iter().any(|t| t.as_var() == Some(&v)));
            }
        }

        /// The existential variables and the frontier partition the head
        /// variables of a TGD.
        #[test]
        fn existentials_and_frontier_partition_head_vars(tgd in arb_tgd()) {
            let head_vars = tgd.head_variables();
            let frontier = tgd.frontier();
            let existential = tgd.existential_variables();
            prop_assert!(frontier.is_disjoint(&existential));
            let union: std::collections::BTreeSet<_> =
                frontier.union(&existential).cloned().collect();
            prop_assert_eq!(union, head_vars);
        }

        /// Unifying an atom with itself always succeeds and produces a
        /// unifier under which the atom is unchanged.
        #[test]
        fn self_unification_is_identity(atom in arb_atom()) {
            let mut unifier = Unifier::new();
            prop_assert!(unifier.unify_atoms(&atom, &atom));
            prop_assert_eq!(unifier.apply_atom(&atom), atom);
        }

        /// Classification never panics and weak stickiness is implied by
        /// stickiness.
        #[test]
        fn sticky_implies_weakly_sticky(tgds in proptest::collection::vec(arb_tgd(), 0..5)) {
            let report = analysis::classify_tgds(&tgds);
            if report.sticky {
                prop_assert!(report.weakly_sticky);
            }
            if report.linear {
                prop_assert!(report.guarded);
            }
        }

        /// Programs survive a full print→parse→print cycle (idempotent
        /// pretty-printing).
        #[test]
        fn program_printing_is_stable(tgds in proptest::collection::vec(arb_tgd(), 1..4)) {
            let mut program = Program::new();
            for t in tgds {
                program.add_rule(Rule::Tgd(t));
            }
            let once = program.to_string();
            let reparsed = parse_program(&once).unwrap();
            let twice = reparsed.to_string();
            prop_assert_eq!(once, twice);
        }
    }
}
