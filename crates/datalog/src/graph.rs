//! Predicate- and position-level dependency graphs.
//!
//! Two graphs underpin the syntactic analyses:
//!
//! * the **predicate graph** (node = predicate, edge body → head) used for
//!   stratification-style reasoning and for detecting which predicates a
//!   query can depend on;
//! * the **position dependency graph** (node = position, normal edges for
//!   value propagation, *special* edges for existential-value creation) used
//!   for weak acyclicity and for the finite-/infinite-rank split that the
//!   weak-stickiness test needs.

use crate::program::{Position, Program};
use crate::rule::Tgd;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Predicate-level dependency graph.
#[derive(Debug, Clone, Default)]
pub struct PredicateGraph {
    /// Edges: body predicate → head predicates it can feed.
    edges: BTreeMap<String, BTreeSet<String>>,
    /// All nodes (predicates), including isolated ones.
    nodes: BTreeSet<String>,
}

impl PredicateGraph {
    /// Build the predicate graph of a program (TGDs only; constraints and
    /// EGDs do not generate data).
    pub fn build(program: &Program) -> Self {
        let mut graph = PredicateGraph::default();
        for (pred, _) in program.predicates() {
            graph.nodes.insert(pred);
        }
        for tgd in &program.tgds {
            for body_atom in &tgd.body.atoms {
                for head_atom in &tgd.head {
                    graph
                        .edges
                        .entry(body_atom.predicate.clone())
                        .or_default()
                        .insert(head_atom.predicate.clone());
                }
            }
        }
        graph
    }

    /// All predicates.
    pub fn nodes(&self) -> &BTreeSet<String> {
        &self.nodes
    }

    /// Direct successors of `predicate`.
    pub fn successors(&self, predicate: &str) -> BTreeSet<String> {
        self.edges.get(predicate).cloned().unwrap_or_default()
    }

    /// Every predicate reachable from any of `seeds` (including the seeds
    /// themselves).
    pub fn reachable_from(&self, seeds: &[&str]) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = seeds.iter().map(|s| s.to_string()).collect();
        let mut queue: VecDeque<String> = seen.iter().cloned().collect();
        while let Some(current) = queue.pop_front() {
            for next in self.successors(&current) {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Every predicate from which some predicate in `targets` is reachable
    /// (the predicates a query over `targets` may depend on).
    pub fn ancestors_of(&self, targets: &[&str]) -> BTreeSet<String> {
        // Build the reverse adjacency on the fly.
        let mut reverse: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, tos) in &self.edges {
            for to in tos {
                reverse
                    .entry(to.as_str())
                    .or_default()
                    .insert(from.as_str());
            }
        }
        let mut seen: BTreeSet<String> = targets.iter().map(|s| s.to_string()).collect();
        let mut queue: VecDeque<String> = seen.iter().cloned().collect();
        while let Some(current) = queue.pop_front() {
            if let Some(preds) = reverse.get(current.as_str()) {
                for p in preds {
                    if seen.insert(p.to_string()) {
                        queue.push_back(p.to_string());
                    }
                }
            }
        }
        seen
    }

    /// `true` when the TGD-induced graph has a cycle (recursion between
    /// predicates).
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm: a cycle exists iff topological sort is partial.
        let mut indegree: BTreeMap<&str, usize> =
            self.nodes.iter().map(|n| (n.as_str(), 0)).collect();
        for tos in self.edges.values() {
            for to in tos {
                *indegree.entry(to.as_str()).or_insert(0) += 1;
            }
        }
        let mut queue: VecDeque<&str> = indegree
            .iter()
            .filter_map(|(n, d)| (*d == 0).then_some(*n))
            .collect();
        let mut visited = 0;
        while let Some(node) = queue.pop_front() {
            visited += 1;
            if let Some(tos) = self.edges.get(node) {
                for to in tos {
                    let d = indegree
                        .get_mut(to.as_str())
                        .expect("every edge target is a node");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(to.as_str());
                    }
                }
            }
        }
        visited < indegree.len()
    }
}

/// An edge of the position dependency graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PositionEdge {
    /// Source position (a body position of a frontier variable).
    pub from: Position,
    /// Target position (a head position).
    pub to: Position,
    /// `true` for *special* edges: the target position holds an existential
    /// variable, i.e. firing the rule creates a fresh null there.
    pub special: bool,
}

/// Position-level dependency graph of a set of TGDs.
#[derive(Debug, Clone, Default)]
pub struct PositionGraph {
    /// All positions of the program's schema.
    pub positions: BTreeSet<Position>,
    /// The edges.
    pub edges: Vec<PositionEdge>,
}

impl PositionGraph {
    /// Build the position graph for a program's TGDs.
    pub fn build(program: &Program) -> Self {
        Self::from_tgds(&program.tgds, program.positions())
    }

    /// Build the position graph from explicit TGDs and schema positions.
    pub fn from_tgds(tgds: &[Tgd], all_positions: Vec<Position>) -> Self {
        let mut graph = PositionGraph {
            positions: all_positions.into_iter().collect(),
            edges: Vec::new(),
        };
        for tgd in tgds {
            let existential = tgd.existential_variables();
            let frontier = tgd.frontier();
            for var in &frontier {
                // Body positions of the frontier variable.
                let mut body_positions = Vec::new();
                for atom in &tgd.body.atoms {
                    for (i, term) in atom.terms.iter().enumerate() {
                        if let Term::Var(v) = term {
                            if v == var {
                                body_positions.push(Position::new(atom.predicate.clone(), i));
                            }
                        }
                    }
                }
                for head_atom in &tgd.head {
                    for (i, term) in head_atom.terms.iter().enumerate() {
                        if let Term::Var(v) = term {
                            let head_pos = Position::new(head_atom.predicate.clone(), i);
                            if v == var {
                                // Normal edge: the frontier value propagates.
                                for bp in &body_positions {
                                    graph.edges.push(PositionEdge {
                                        from: bp.clone(),
                                        to: head_pos.clone(),
                                        special: false,
                                    });
                                }
                            } else if existential.contains(v) {
                                // Special edge: a fresh null is created at the
                                // existential position whenever the rule fires.
                                for bp in &body_positions {
                                    graph.edges.push(PositionEdge {
                                        from: bp.clone(),
                                        to: head_pos.clone(),
                                        special: true,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        graph.edges.sort();
        graph.edges.dedup();
        graph
    }

    /// Successors of a position (pairs of target position and edge
    /// specialness).
    pub fn successors(&self, from: &Position) -> Vec<(&Position, bool)> {
        self.edges
            .iter()
            .filter(|e| &e.from == from)
            .map(|e| (&e.to, e.special))
            .collect()
    }

    /// The set of positions that lie on or are reachable from a cycle that
    /// contains a special edge — the positions of **infinite rank**, where an
    /// unbounded number of fresh nulls may appear during the chase.
    pub fn infinite_rank_positions(&self) -> BTreeSet<Position> {
        // Step 1: find positions that are on a cycle through a special edge:
        // for each special edge (u ⇒ v), if u is reachable from v then every
        // node on some v→…→u path together with u, v lies on such a cycle.
        // It suffices to seed with v whenever u is reachable from v, and then
        // close under reachability.
        let mut seeds: BTreeSet<Position> = BTreeSet::new();
        for edge in self.edges.iter().filter(|e| e.special) {
            if self.reaches(&edge.to, &edge.from) {
                seeds.insert(edge.to.clone());
                seeds.insert(edge.from.clone());
            }
        }
        // Step 2: everything reachable from a seed has infinite rank.
        let mut infinite = seeds.clone();
        let mut queue: VecDeque<Position> = seeds.into_iter().collect();
        while let Some(current) = queue.pop_front() {
            for (next, _) in self.successors(&current) {
                if infinite.insert(next.clone()) {
                    queue.push_back(next.clone());
                }
            }
        }
        infinite
    }

    /// The positions of **finite rank** (complement of
    /// [`PositionGraph::infinite_rank_positions`] within the schema).
    pub fn finite_rank_positions(&self) -> BTreeSet<Position> {
        let infinite = self.infinite_rank_positions();
        self.positions
            .iter()
            .filter(|p| !infinite.contains(*p))
            .cloned()
            .collect()
    }

    /// Weak acyclicity: no cycle goes through a special edge.  Weakly acyclic
    /// TGD sets have a terminating (restricted) chase on every instance.
    pub fn is_weakly_acyclic(&self) -> bool {
        self.edges
            .iter()
            .filter(|e| e.special)
            .all(|e| !self.reaches(&e.to, &e.from))
    }

    /// A witness cycle through a special edge, when one exists: for the
    /// first special edge `u ⇒ v` (in sorted edge order) whose source is
    /// reachable from its target, the position sequence `u, v, …, u` — the
    /// concrete reason the program is not weakly acyclic, suitable for
    /// diagnostics.  `None` exactly when
    /// [`PositionGraph::is_weakly_acyclic`] holds.
    pub fn special_cycle(&self) -> Option<Vec<Position>> {
        for edge in self.edges.iter().filter(|e| e.special) {
            if let Some(path) = self.path(&edge.to, &edge.from) {
                let mut cycle = Vec::with_capacity(path.len() + 1);
                cycle.push(edge.from.clone());
                cycle.extend(path);
                return Some(cycle);
            }
        }
        None
    }

    /// A shortest path `from → … → to` (inclusive of both endpoints,
    /// following edges of either kind), or `None` when unreachable.  A
    /// trivial `from == to` path is the single position.
    fn path(&self, from: &Position, to: &Position) -> Option<Vec<Position>> {
        if from == to {
            return Some(vec![from.clone()]);
        }
        let mut parent: BTreeMap<Position, Position> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from.clone());
        while let Some(current) = queue.pop_front() {
            for (next, _) in self.successors(&current) {
                if next == from || parent.contains_key(next) {
                    continue;
                }
                parent.insert(next.clone(), current.clone());
                if next == to {
                    let mut path = vec![next.clone()];
                    let mut cursor = next;
                    while let Some(prev) = parent.get(cursor) {
                        path.push(prev.clone());
                        cursor = prev;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next.clone());
            }
        }
        None
    }

    /// Is `to` reachable from `from` following edges of either kind?
    fn reaches(&self, from: &Position, to: &Position) -> bool {
        if from == to {
            return true;
        }
        let mut seen = BTreeSet::new();
        seen.insert(from.clone());
        let mut queue = VecDeque::new();
        queue.push_back(from.clone());
        while let Some(current) = queue.pop_front() {
            for (next, _) in self.successors(&current) {
                if next == to {
                    return true;
                }
                if seen.insert(next.clone()) {
                    queue.push_back(next.clone());
                }
            }
        }
        false
    }

    /// The **affected** positions: positions where labeled nulls may appear
    /// during the chase.  A position is affected when an existential variable
    /// occurs there in some head, or when a frontier variable that occurs in
    /// the body *only* at affected positions occurs there in some head.
    pub fn affected_positions(tgds: &[Tgd]) -> BTreeSet<Position> {
        let mut affected: BTreeSet<Position> = BTreeSet::new();
        // Base case: existential positions.
        for tgd in tgds {
            let existential = tgd.existential_variables();
            for head_atom in &tgd.head {
                for (i, term) in head_atom.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        if existential.contains(v) {
                            affected.insert(Position::new(head_atom.predicate.clone(), i));
                        }
                    }
                }
            }
        }
        // Fixpoint: propagate through frontier variables bound only at
        // affected body positions.
        loop {
            let mut changed = false;
            for tgd in tgds {
                let frontier = tgd.frontier();
                for var in &frontier {
                    let mut body_positions = Vec::new();
                    for atom in &tgd.body.atoms {
                        for (i, term) in atom.terms.iter().enumerate() {
                            if term.as_var() == Some(var) {
                                body_positions.push(Position::new(atom.predicate.clone(), i));
                            }
                        }
                    }
                    if body_positions.is_empty()
                        || !body_positions.iter().all(|p| affected.contains(p))
                    {
                        continue;
                    }
                    for head_atom in &tgd.head {
                        for (i, term) in head_atom.terms.iter().enumerate() {
                            if term.as_var() == Some(var) {
                                let pos = Position::new(head_atom.predicate.clone(), i);
                                if affected.insert(pos) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::parser::parse_program;
    use crate::rule::tgd;

    fn hospital_like() -> Program {
        parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap()
    }

    #[test]
    fn predicate_graph_edges_and_reachability() {
        let graph = PredicateGraph::build(&hospital_like());
        assert!(graph.successors("PatientWard").contains("PatientUnit"));
        assert!(graph.successors("UnitWard").contains("Shifts"));
        let reach = graph.reachable_from(&["WorkingSchedules"]);
        assert!(reach.contains("Shifts"));
        assert!(!reach.contains("PatientUnit"));
        let anc = graph.ancestors_of(&["Shifts"]);
        assert!(anc.contains("WorkingSchedules"));
        assert!(anc.contains("UnitWard"));
        assert!(!anc.contains("PatientWard"));
    }

    #[test]
    fn cycle_detection_on_predicates() {
        let acyclic = PredicateGraph::build(&hospital_like());
        assert!(!acyclic.has_cycle());
        let cyclic = parse_program("P(x) :- Q(x).\nQ(x) :- P(x).\n").unwrap();
        assert!(PredicateGraph::build(&cyclic).has_cycle());
    }

    #[test]
    fn position_graph_marks_special_edges() {
        let program = hospital_like();
        let graph = PositionGraph::build(&program);
        // Rule (8): WorkingSchedules[d]→Shifts[d] is normal; the existential
        // z at Shifts[3] gets special edges from every frontier body position.
        assert!(graph.edges.iter().any(|e| !e.special
            && e.from == Position::new("WorkingSchedules", 1)
            && e.to == Position::new("Shifts", 1)));
        assert!(graph
            .edges
            .iter()
            .any(|e| e.special && e.to == Position::new("Shifts", 3)));
        // Rule (7) has no existentials → no special edge into PatientUnit.
        assert!(!graph
            .edges
            .iter()
            .any(|e| e.special && e.to.predicate == "PatientUnit"));
    }

    #[test]
    fn hospital_rules_are_weakly_acyclic_with_finite_ranks() {
        let graph = PositionGraph::build(&hospital_like());
        assert!(graph.is_weakly_acyclic());
        assert!(graph.infinite_rank_positions().is_empty());
        assert_eq!(graph.finite_rank_positions(), graph.positions);
    }

    #[test]
    fn self_feeding_existential_rule_has_infinite_rank_positions() {
        // R(y, z) :- R(x, y). — the classic non-terminating chase shape.
        let program = parse_program("R(y, z) :- R(x, y).\n").unwrap();
        let graph = PositionGraph::build(&program);
        assert!(!graph.is_weakly_acyclic());
        let infinite = graph.infinite_rank_positions();
        assert!(infinite.contains(&Position::new("R", 0)));
        assert!(infinite.contains(&Position::new("R", 1)));
        assert!(graph.finite_rank_positions().is_empty());
    }

    #[test]
    fn affected_positions_base_and_propagation() {
        // T gets a null at position 1; that null can propagate into U[0].
        let program = parse_program(
            "T(x, z) :- S(x).\n\
             U(z) :- T(x, z).\n",
        )
        .unwrap();
        let affected = PositionGraph::affected_positions(&program.tgds);
        assert!(affected.contains(&Position::new("T", 1)));
        assert!(affected.contains(&Position::new("U", 0)));
        assert!(!affected.contains(&Position::new("T", 0)));
        assert!(!affected.contains(&Position::new("S", 0)));
    }

    #[test]
    fn affected_positions_require_all_body_occurrences_affected() {
        // The variable y occurs both at an affected position (T[1]) and a
        // non-affected one (S[0]), so V[0] is NOT affected.
        let program = parse_program(
            "T(x, z) :- S(x).\n\
             V(y) :- T(x, y), S(y).\n",
        )
        .unwrap();
        let affected = PositionGraph::affected_positions(&program.tgds);
        assert!(affected.contains(&Position::new("T", 1)));
        assert!(!affected.contains(&Position::new("V", 0)));
    }

    #[test]
    fn from_tgds_accepts_explicit_positions() {
        let tgds = vec![tgd(
            Atom::with_vars("B", &["x"]),
            vec![Atom::with_vars("A", &["x"])],
        )];
        let graph =
            PositionGraph::from_tgds(&tgds, vec![Position::new("A", 0), Position::new("B", 0)]);
        assert_eq!(graph.positions.len(), 2);
        assert_eq!(graph.edges.len(), 1);
        assert!(!graph.edges[0].special);
    }
}
