//! Substitutions: assignments of variables to values, and unifiers mapping
//! variables to terms.
//!
//! Two flavours are needed:
//!
//! * [`Assignment`] maps variables to ground [`Value`]s; it is what
//!   conjunctive-query evaluation and the chase produce when matching rule
//!   bodies against an instance.
//! * [`Unifier`] maps variables to [`Term`]s (possibly other variables); it
//!   is what resolution-based query answering and FO rewriting use when
//!   unifying query atoms with rule heads.

use crate::atom::{Atom, Comparison, Conjunction};
use crate::term::{Term, Variable};
use ontodq_relational::{Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A ground assignment of variables to values.
///
/// Stored as a flat vector sorted by the variables' interned ids: rule
/// bodies bind a handful of variables, and the join extends (clones) an
/// assignment once per candidate tuple — with interned `Copy` variables
/// and scalar values, a clone is one allocation plus a memcpy, lookups are
/// a short scan, and ordering never takes the interner's lock.  Iteration
/// (and [`Assignment`]'s `Display`) follows that id order: deterministic
/// within a process, but *not* lexicographic by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    entries: Vec<(Variable, Value)>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `value`; returns `false` (and leaves the assignment
    /// unchanged) when `var` is already bound to a different value.
    pub fn bind(&mut self, var: Variable, value: Value) -> bool {
        match self
            .entries
            .binary_search_by_key(&var.sym_id(), |(v, _)| v.sym_id())
        {
            Ok(position) => self.entries[position].1 == value,
            Err(position) => {
                self.entries.insert(position, (var, value));
                true
            }
        }
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: &Variable) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(v, _)| v == var)
            .map(|(_, value)| value)
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over the bindings in a canonical (interned-id) order —
    /// deterministic within a process, independent of bind order.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Value)> {
        self.entries.iter().map(|(var, value)| (var, value))
    }

    /// Apply the assignment to a term: bound variables become constants,
    /// unbound variables and constants are returned unchanged.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => match self.get(v) {
                Some(value) => Term::Const(*value),
                None => term.clone(),
            },
            Term::Const(_) => term.clone(),
        }
    }

    /// Apply the assignment to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.predicate.clone(),
            atom.terms.iter().map(|t| self.apply_term(t)).collect(),
        )
    }

    /// Turn a (fully bound) atom into a tuple of values; returns `None` if
    /// some argument remains a variable after applying the assignment.
    pub fn ground_atom(&self, atom: &Atom) -> Option<Tuple> {
        let mut values = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match self.apply_term(term) {
                Term::Const(v) => values.push(v),
                Term::Var(_) => return None,
            }
        }
        Some(Tuple::new(values))
    }

    /// Try to extend the assignment so that `atom` matches `tuple`
    /// position-wise.  Constants must agree exactly; variables are bound (or
    /// checked against their existing binding).  Returns the extended
    /// assignment, or `None` on mismatch.  `self` is not modified.
    pub fn match_atom(&self, atom: &Atom, tuple: &Tuple) -> Option<Assignment> {
        if atom.arity() != tuple.arity() {
            return None;
        }
        // Reject constant and already-bound mismatches before paying for
        // the clone — the join calls this once per candidate tuple.
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = self.get(v) {
                        if bound != value {
                            return None;
                        }
                    }
                }
            }
        }
        let mut extended = self.clone();
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            if let Term::Var(v) = term {
                if !extended.bind(*v, *value) {
                    return None;
                }
            }
        }
        Some(extended)
    }

    /// Evaluate a comparison under this assignment.  Returns `false` when a
    /// side is unbound or the comparison is undefined on the operand kinds.
    pub fn satisfies_comparison(&self, cmp: &Comparison) -> bool {
        let left = match self.apply_term(&cmp.left) {
            Term::Const(v) => v,
            Term::Var(_) => return false,
        };
        let right = match self.apply_term(&cmp.right) {
            Term::Const(v) => v,
            Term::Var(_) => return false,
        };
        cmp.op.eval(&left, &right).unwrap_or(false)
    }

    /// Project the assignment onto `vars`, returning values in the given
    /// order; `None` if some variable is unbound.
    pub fn project(&self, vars: &[Variable]) -> Option<Tuple> {
        let mut values = Vec::with_capacity(vars.len());
        for v in vars {
            values.push(*self.get(v)?);
        }
        Some(Tuple::new(values))
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var} ↦ {value}")?;
        }
        write!(f, "}}")
    }
}

/// A substitution of variables by terms (used for unification during
/// resolution and rewriting).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Unifier {
    map: BTreeMap<Variable, Term>,
}

impl Unifier {
    /// The empty unifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: &Variable) -> Option<&Term> {
        self.map.get(var)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resolve a term through the unifier, following chains of variable
    /// bindings (with an occurs-check-free walk; our terms are flat, so
    /// chains always terminate as long as bindings are acyclic, which
    /// [`Unifier::unify_terms`] maintains).
    pub fn walk(&self, term: &Term) -> Term {
        let mut current = term.clone();
        let mut steps = 0;
        while let Term::Var(v) = &current {
            match self.map.get(v) {
                Some(next) if steps < self.map.len() + 1 => {
                    current = next.clone();
                    steps += 1;
                }
                _ => break,
            }
        }
        current
    }

    /// Unify two terms, extending the unifier; returns `false` when the
    /// terms are not unifiable (distinct constants).
    pub fn unify_terms(&mut self, a: &Term, b: &Term) -> bool {
        let a = self.walk(a);
        let b = self.walk(b);
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => x == y,
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if t.as_var() == Some(&v) {
                    true
                } else {
                    self.map.insert(v, t);
                    true
                }
            }
        }
    }

    /// Unify two atoms; returns `false` when predicates or arities differ or
    /// some argument pair is not unifiable.
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        if a.predicate != b.predicate || a.arity() != b.arity() {
            return false;
        }
        a.terms
            .iter()
            .zip(&b.terms)
            .all(|(x, y)| self.unify_terms(x, y))
    }

    /// Apply the unifier to a term.
    pub fn apply_term(&self, term: &Term) -> Term {
        self.walk(term)
    }

    /// Apply the unifier to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.predicate.clone(),
            atom.terms.iter().map(|t| self.apply_term(t)).collect(),
        )
    }

    /// Apply the unifier to a conjunction (positive atoms, negated atoms and
    /// comparisons alike).
    pub fn apply_conjunction(&self, conj: &Conjunction) -> Conjunction {
        Conjunction {
            atoms: conj.atoms.iter().map(|a| self.apply_atom(a)).collect(),
            negated: conj.negated.iter().map(|a| self.apply_atom(a)).collect(),
            comparisons: conj
                .comparisons
                .iter()
                .map(|c| Comparison::new(self.apply_term(&c.left), c.op, self.apply_term(&c.right)))
                .collect(),
        }
    }
}

impl fmt::Display for Unifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, term)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var} ↦ {term}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CompareOp;

    #[test]
    fn bind_respects_existing_bindings() {
        let mut a = Assignment::new();
        assert!(a.bind(Variable::new("x"), Value::str("W1")));
        assert!(a.bind(Variable::new("x"), Value::str("W1")));
        assert!(!a.bind(Variable::new("x"), Value::str("W2")));
        assert_eq!(a.get(&Variable::new("x")), Some(&Value::str("W1")));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn match_atom_binds_variables_and_checks_constants() {
        let atom = Atom::new("UnitWard", vec![Term::constant("Standard"), Term::var("w")]);
        let a = Assignment::new();
        let matched = a
            .match_atom(&atom, &Tuple::from_iter(["Standard", "W1"]))
            .unwrap();
        assert_eq!(matched.get(&Variable::new("w")), Some(&Value::str("W1")));
        assert!(a
            .match_atom(&atom, &Tuple::from_iter(["Intensive", "W3"]))
            .is_none());
        // Arity mismatch.
        assert!(a
            .match_atom(&atom, &Tuple::from_iter(["Standard"]))
            .is_none());
    }

    #[test]
    fn match_atom_enforces_join_consistency() {
        let atom = Atom::with_vars("D", &["x", "x"]);
        let a = Assignment::new();
        assert!(a.match_atom(&atom, &Tuple::from_iter(["v", "v"])).is_some());
        assert!(a.match_atom(&atom, &Tuple::from_iter(["v", "w"])).is_none());
    }

    #[test]
    fn ground_atom_requires_full_bindings() {
        let mut a = Assignment::new();
        a.bind(Variable::new("u"), Value::str("Standard"));
        let atom = Atom::with_vars("Unit", &["u"]);
        assert_eq!(a.ground_atom(&atom), Some(Tuple::from_iter(["Standard"])));
        let atom2 = Atom::with_vars("UnitWard", &["u", "w"]);
        assert_eq!(a.ground_atom(&atom2), None);
    }

    #[test]
    fn comparisons_evaluate_under_assignment() {
        let mut a = Assignment::new();
        a.bind(Variable::new("b"), Value::str("B1"));
        a.bind(
            Variable::new("t"),
            Value::parse_time("Sep/5-12:10").unwrap(),
        );
        assert!(a.satisfies_comparison(&Comparison::new(
            Term::var("b"),
            CompareOp::Eq,
            Term::constant("B1")
        )));
        assert!(a.satisfies_comparison(&Comparison::new(
            Term::var("t"),
            CompareOp::Le,
            Term::constant(Value::parse_time("Sep/5-12:15").unwrap())
        )));
        // Unbound variable → not satisfied.
        assert!(!a.satisfies_comparison(&Comparison::new(
            Term::var("zz"),
            CompareOp::Eq,
            Term::constant("B1")
        )));
    }

    #[test]
    fn projection_returns_values_in_order() {
        let mut a = Assignment::new();
        a.bind(Variable::new("d"), Value::str("Sep/9"));
        a.bind(Variable::new("n"), Value::str("Mark"));
        let t = a
            .project(&[Variable::new("n"), Variable::new("d")])
            .unwrap();
        assert_eq!(t, Tuple::from_iter(["Mark", "Sep/9"]));
        assert!(a.project(&[Variable::new("missing")]).is_none());
    }

    #[test]
    fn unifier_unifies_variables_and_constants() {
        let mut u = Unifier::new();
        assert!(u.unify_terms(&Term::var("x"), &Term::constant("W1")));
        assert!(u.unify_terms(&Term::var("y"), &Term::var("x")));
        assert_eq!(u.walk(&Term::var("y")), Term::constant("W1"));
        assert!(!u.unify_terms(&Term::constant("A"), &Term::constant("B")));
    }

    #[test]
    fn unify_atoms_checks_predicate_and_arity() {
        let mut u = Unifier::new();
        assert!(!u.unify_atoms(&Atom::with_vars("P", &["x"]), &Atom::with_vars("Q", &["x"])));
        assert!(!u.unify_atoms(
            &Atom::with_vars("P", &["x"]),
            &Atom::with_vars("P", &["x", "y"])
        ));
        let mut u = Unifier::new();
        assert!(u.unify_atoms(
            &Atom::new("P", vec![Term::var("x"), Term::constant("c")]),
            &Atom::new("P", vec![Term::constant("d"), Term::var("y")]),
        ));
        assert_eq!(u.walk(&Term::var("x")), Term::constant("d"));
        assert_eq!(u.walk(&Term::var("y")), Term::constant("c"));
    }

    #[test]
    fn apply_conjunction_rewrites_all_literal_kinds() {
        let mut u = Unifier::new();
        u.unify_terms(&Term::var("x"), &Term::constant("W1"));
        let conj = Conjunction::positive(vec![Atom::with_vars("P", &["x", "y"])])
            .and_not(Atom::with_vars("N", &["x"]))
            .and_compare(Comparison::new(
                Term::var("x"),
                CompareOp::Neq,
                Term::var("y"),
            ));
        let applied = u.apply_conjunction(&conj);
        assert_eq!(applied.atoms[0].terms[0], Term::constant("W1"));
        assert_eq!(applied.negated[0].terms[0], Term::constant("W1"));
        assert_eq!(applied.comparisons[0].left, Term::constant("W1"));
    }

    #[test]
    fn self_binding_is_a_noop() {
        let mut u = Unifier::new();
        assert!(u.unify_terms(&Term::var("x"), &Term::var("x")));
        assert!(u.is_empty());
    }
}
