//! A small text syntax for Datalog± programs.
//!
//! The syntax mirrors the paper's notation closely enough to write the
//! hospital ontology by hand:
//!
//! ```text
//! % Rule (7): upward navigation.
//! PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).
//!
//! % Rule (8): downward navigation; z is existential (not in the body).
//! Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).
//!
//! % Form (3): a dimensional negative constraint.
//! ! :- PatientWard(w, d, p), UnitWard(Intensive, w), MonthDay("August/2005", d).
//!
//! % Form (2): a dimensional EGD.
//! t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).
//!
//! % Form (1): referential constraint with a negated atom.
//! ! :- PatientUnit(u, d, p), not Unit(u).
//!
//! % A fact.
//! Unit(Standard).
//! ```
//!
//! Lexical conventions:
//! * identifiers starting with a lowercase letter or `_` are **variables**;
//! * identifiers starting with an uppercase letter are **string constants**
//!   (as are quoted strings, which may contain arbitrary characters);
//! * numeric literals are integers or doubles; `true`/`false` are booleans;
//!   `@Mon/D-HH:MM` literals are timestamps;
//! * `%` starts a line comment;
//! * rules end with a period.

use crate::atom::{Atom, CompareOp, Comparison, Conjunction};
use crate::program::Program;
use crate::rule::{ConditionalDelete, Egd, Fact, NegativeConstraint, Retraction, Rule, Tgd};
use crate::term::Term;
use ontodq_relational::Value;
use std::fmt;

/// A parse error with (1-based) line information where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// The offending rule text (trimmed), if known.
    pub rule_text: Option<String>,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rule_text: None,
        }
    }

    fn in_rule(mut self, rule: &str) -> Self {
        self.rule_text = Some(rule.trim().to_string());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rule_text {
            Some(rule) => write!(f, "{} (in rule: {rule})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Tokens of the rule language.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Quoted(String),
    Number(String),
    Time(String),
    LParen,
    RParen,
    Comma,
    Implies, // :-
    Period,
    Bang,
    Minus, // '-' not followed by a digit: starts a retraction / delete rule
    Not,
    Op(CompareOp),
}

fn tokenize(text: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Period);
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'-') {
                    tokens.push(Token::Implies);
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '-' after ':'"));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompareOp::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompareOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompareOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompareOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Op(CompareOp::Eq));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompareOp::Neq));
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(ParseError::new("unterminated string literal"));
                }
                i += 1; // closing quote
                tokens.push(Token::Quoted(s));
            }
            '@' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || matches!(chars[i], '/' | '-' | ':'))
                {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Time(s));
            }
            '-' if !chars
                .get(i + 1)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false) =>
            {
                tokens.push(Token::Minus);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // Periods terminate rules; only treat '.' as part of a
                    // number when followed by a digit.
                    if chars[i] == '.'
                        && !chars
                            .get(i + 1)
                            .map(|c| c.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Number(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '\'')
                {
                    s.push(chars[i]);
                    i += 1;
                }
                if s == "not" {
                    tokens.push(Token::Not);
                } else {
                    tokens.push(Token::Ident(s));
                }
            }
            other => {
                return Err(ParseError::new(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

/// Parser state over a token stream.
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == token => Ok(()),
            other => Err(ParseError::new(format!(
                "expected {token:?}, found {other:?}"
            ))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Parse a term from an already-consumed leading token.
    fn term_from(&mut self, token: Token) -> Result<Term, ParseError> {
        match token {
            Token::Ident(name) => {
                let first = name.chars().next().unwrap_or('x');
                if first.is_ascii_lowercase() || first == '_' {
                    if name == "true" || name == "false" {
                        Ok(Term::constant(Value::bool(name == "true")))
                    } else {
                        Ok(Term::var(name))
                    }
                } else {
                    Ok(Term::constant(Value::str(name)))
                }
            }
            Token::Quoted(s) => Ok(Term::constant(Value::str(s))),
            Token::Number(s) => {
                if let Ok(i) = s.parse::<i64>() {
                    Ok(Term::constant(Value::int(i)))
                } else if let Ok(d) = s.parse::<f64>() {
                    Ok(Term::constant(Value::double(d)))
                } else {
                    Err(ParseError::new(format!("bad numeric literal '{s}'")))
                }
            }
            Token::Time(s) => Value::parse_time(&s)
                .map(Term::constant)
                .ok_or_else(|| ParseError::new(format!("bad time literal '@{s}'"))),
            other => Err(ParseError::new(format!("expected a term, found {other:?}"))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let token = self
            .next()
            .ok_or_else(|| ParseError::new("unexpected end of input, expected a term"))?;
        self.term_from(token)
    }

    /// Parse `Pred(t1, …, tn)` where the predicate ident has already been
    /// consumed.
    fn atom_with_name(&mut self, name: String) -> Result<Atom, ParseError> {
        self.expect(&Token::LParen)?;
        let mut terms = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.next();
            return Ok(Atom::new(name, terms));
        }
        loop {
            terms.push(self.term()?);
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => {
                    return Err(ParseError::new(format!(
                        "expected ',' or ')' in atom argument list, found {other:?}"
                    )))
                }
            }
        }
        Ok(Atom::new(name, terms))
    }

    /// Parse a body literal starting at the current token and add it to the
    /// conjunction.
    fn body_literal(&mut self, conj: &mut Conjunction) -> Result<(), ParseError> {
        if self.peek() == Some(&Token::Not) {
            self.next();
            match self.next() {
                Some(Token::Ident(name)) => {
                    let atom = self.atom_with_name(name)?;
                    conj.negated.push(atom);
                    Ok(())
                }
                other => Err(ParseError::new(format!(
                    "expected an atom after 'not', found {other:?}"
                ))),
            }
        } else {
            let first = self
                .next()
                .ok_or_else(|| ParseError::new("unexpected end of body"))?;
            // Either an atom `Ident(...)` or a comparison `term op term`.
            if let Token::Ident(name) = &first {
                if self.peek() == Some(&Token::LParen) {
                    let atom = self.atom_with_name(name.clone())?;
                    conj.atoms.push(atom);
                    return Ok(());
                }
            }
            let left = self.term_from(first)?;
            match self.next() {
                Some(Token::Op(op)) => {
                    let right = self.term()?;
                    conj.comparisons.push(Comparison::new(left, op, right));
                    Ok(())
                }
                other => Err(ParseError::new(format!(
                    "expected a comparison operator, found {other:?}"
                ))),
            }
        }
    }

    fn body(&mut self) -> Result<Conjunction, ParseError> {
        let mut conj = Conjunction::empty();
        loop {
            self.body_literal(&mut conj)?;
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::Period) => break,
                other => {
                    return Err(ParseError::new(format!(
                        "expected ',' or '.' after body literal, found {other:?}"
                    )))
                }
            }
        }
        Ok(conj)
    }

    /// Parse one rule.
    fn rule(&mut self) -> Result<Rule, ParseError> {
        // `! :- body.` — negative constraint.
        if self.peek() == Some(&Token::Bang) {
            self.next();
            self.expect(&Token::Implies)?;
            let body = self.body()?;
            return Ok(Rule::Constraint(NegativeConstraint::new(body)));
        }
        // `-P(ā).` — ground retraction; `-P(x̄) :- body.` — conditional
        // delete.
        if self.peek() == Some(&Token::Minus) {
            self.next();
            let atom = match self.next() {
                Some(Token::Ident(name)) => self.atom_with_name(name)?,
                other => {
                    return Err(ParseError::new(format!(
                        "expected an atom after '-', found {other:?}"
                    )))
                }
            };
            return match self.next() {
                Some(Token::Period) => Retraction::new(atom).map(Rule::Retract).ok_or_else(|| {
                    ParseError::new(
                        "a bare retraction must be ground (use '-P(x) :- body.' to \
                             delete by condition)",
                    )
                }),
                Some(Token::Implies) => {
                    let body = self.body()?;
                    Ok(Rule::Delete(ConditionalDelete::new(body, atom)))
                }
                other => Err(ParseError::new(format!(
                    "expected '.' or ':-' after retraction head, found {other:?}"
                ))),
            };
        }
        // Otherwise the rule starts with a term or an atom.
        let first = self
            .next()
            .ok_or_else(|| ParseError::new("unexpected end of rule"))?;
        if let Token::Ident(name) = &first {
            if self.peek() == Some(&Token::LParen) {
                // Atom: either a fact, a TGD head, or a conjunctive head.
                let mut heads = vec![self.atom_with_name(name.clone())?];
                loop {
                    match self.next() {
                        Some(Token::Period) => {
                            // A fact (or conjunction of facts).
                            if heads.len() == 1 && heads[0].is_ground() {
                                let atom = heads.pop().expect("length checked above");
                                let fact = Fact::new(atom).expect("groundness checked above");
                                return Ok(Rule::Fact(fact));
                            }
                            return Err(ParseError::new(
                                "headless non-ground atom list is not a valid rule",
                            ));
                        }
                        Some(Token::Comma) => match self.next() {
                            Some(Token::Ident(next_name)) => {
                                heads.push(self.atom_with_name(next_name)?);
                            }
                            other => {
                                return Err(ParseError::new(format!(
                                    "expected an atom in conjunctive head, found {other:?}"
                                )))
                            }
                        },
                        Some(Token::Implies) => {
                            let body = self.body()?;
                            return Ok(Rule::Tgd(Tgd::with_heads(body, heads)));
                        }
                        other => {
                            return Err(ParseError::new(format!(
                                "expected '.', ',' or ':-' after head atom, found {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        // EGD: `x = y :- body.`
        let left = self.term_from(first)?;
        match self.next() {
            Some(Token::Op(CompareOp::Eq)) => {
                let right = self.term()?;
                self.expect(&Token::Implies)?;
                let body = self.body()?;
                match (left, right) {
                    (Term::Var(l), Term::Var(r)) => Ok(Rule::Egd(Egd::new(body, l, r))),
                    _ => Err(ParseError::new(
                        "EGD heads must equate two variables (use a comparison in a constraint body otherwise)",
                    )),
                }
            }
            other => Err(ParseError::new(format!(
                "expected '=' in EGD head, found {other:?}"
            ))),
        }
    }
}

/// Parse a single rule from text (the trailing period is required).
pub fn parse_rule(text: &str) -> Result<Rule, ParseError> {
    let tokens = tokenize(text).map_err(|e| e.in_rule(text))?;
    let mut parser = Parser::new(tokens);
    let rule = parser.rule().map_err(|e| e.in_rule(text))?;
    if !parser.at_end() {
        return Err(ParseError::new("trailing tokens after rule").in_rule(text));
    }
    Ok(rule)
}

/// Parse a whole program (any number of rules separated by whitespace and
/// `%`-comments).
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser::new(tokens);
    let mut program = Program::new();
    while !parser.at_end() {
        let rule = parser.rule()?;
        program.add_rule(rule);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Variable;

    #[test]
    fn parse_upward_rule_7() {
        let rule =
            parse_rule("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).").unwrap();
        match rule {
            Rule::Tgd(t) => {
                assert_eq!(t.head.len(), 1);
                assert_eq!(t.head[0].predicate, "PatientUnit");
                assert_eq!(t.body.atoms.len(), 2);
                assert!(t.is_full());
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn parse_downward_rule_8_has_existential() {
        let rule =
            parse_rule("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).")
                .unwrap();
        match rule {
            Rule::Tgd(t) => {
                assert_eq!(
                    t.existential_variables(),
                    std::iter::once(Variable::new("z")).collect()
                );
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn parse_conjunctive_head_rule_9() {
        let rule = parse_rule(
            "InstitutionUnit(i, u), PatientUnit(u, d, p) :- DischargePatients(i, d, p).",
        )
        .unwrap();
        match rule {
            Rule::Tgd(t) => {
                assert_eq!(t.head.len(), 2);
                assert_eq!(
                    t.existential_variables(),
                    std::iter::once(Variable::new("u")).collect()
                );
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn parse_negative_constraint_with_negation() {
        let rule = parse_rule("! :- PatientUnit(u, d, p), not Unit(u).").unwrap();
        match rule {
            Rule::Constraint(nc) => {
                assert_eq!(nc.body.atoms.len(), 1);
                assert_eq!(nc.body.negated.len(), 1);
                assert_eq!(nc.body.negated[0].predicate, "Unit");
            }
            other => panic!("expected constraint, got {other:?}"),
        }
    }

    #[test]
    fn parse_egd_rule_6() {
        let rule = parse_rule(
            "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).",
        )
        .unwrap();
        match rule {
            Rule::Egd(e) => {
                assert_eq!(e.left, Variable::new("t"));
                assert_eq!(e.right, Variable::new("t2"));
                assert_eq!(e.body.atoms.len(), 4);
                assert!(e.is_well_formed());
            }
            other => panic!("expected EGD, got {other:?}"),
        }
    }

    #[test]
    fn parse_fact_and_constants() {
        let rule = parse_rule("UnitWard(Standard, W1).").unwrap();
        match rule {
            Rule::Fact(f) => {
                assert_eq!(f.atom().predicate, "UnitWard");
                assert!(f.atom().is_ground());
            }
            other => panic!("expected fact, got {other:?}"),
        }
    }

    #[test]
    fn parse_literals_of_every_kind() {
        let rule = parse_rule(
            r#"Q(t, p, v) :- Measurements(t, p, v), p = "Tom Waits", t >= @Sep/5-11:45, t <= @Sep/5-12:15, v > 37, ok = true."#,
        )
        .unwrap();
        match rule {
            Rule::Tgd(t) => {
                assert_eq!(t.body.comparisons.len(), 5);
                let time_cmp = &t.body.comparisons[1];
                assert_eq!(time_cmp.op, CompareOp::Ge);
                assert!(matches!(time_cmp.right, Term::Const(Value::Time(_))));
                let bool_cmp = &t.body.comparisons[4];
                assert_eq!(bool_cmp.right, Term::constant(Value::bool(true)));
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn parse_numbers() {
        let rule = parse_rule("R(x) :- S(x, 42, 3.5, -7).").unwrap();
        match rule {
            Rule::Tgd(t) => {
                let atom = &t.body.atoms[0];
                assert_eq!(atom.terms[1], Term::constant(Value::int(42)));
                assert_eq!(atom.terms[2], Term::constant(Value::double(3.5)));
                assert_eq!(atom.terms[3], Term::constant(Value::int(-7)));
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn parse_program_with_comments() {
        let program = parse_program(
            "% the hospital ontology\n\
             PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             % referential constraint\n\
             ! :- PatientUnit(u, d, p), not Unit(u).\n\
             Unit(Standard).\n",
        )
        .unwrap();
        assert_eq!(program.tgds.len(), 1);
        assert_eq!(program.constraints.len(), 1);
        assert_eq!(program.facts.len(), 1);
        assert!(program.validate().is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_rule("PatientUnit(u, d, p :- X(u).").is_err());
        assert!(parse_rule("PatientUnit(u, d, p)").is_err()); // missing period
        assert!(parse_rule("x y :- P(x).").is_err());
        assert!(parse_rule("\"unterminated :- P(x).").is_err());
        assert!(parse_rule("R(x) :- S(x), x ? y.").is_err());
        // Non-ground "fact".
        assert!(parse_rule("R(x).").is_err());
        // EGD equating a variable with a constant is rejected.
        assert!(parse_rule("x = B1 :- R(x).").is_err());
    }

    #[test]
    fn parse_ground_retraction() {
        let rule = parse_rule("-WorkingSchedules(Intensive, \"Sep/5\", Cathy, \"cert\").").unwrap();
        match rule {
            Rule::Retract(r) => {
                assert_eq!(r.atom().predicate, "WorkingSchedules");
                assert_eq!(r.atom().arity(), 4);
                assert!(r.atom().is_ground());
            }
            other => panic!("expected retraction, got {other:?}"),
        }
    }

    #[test]
    fn parse_conditional_delete_with_wildcard_head() {
        let rule = parse_rule("-Edge(x, y) :- Banned(x).").unwrap();
        match rule {
            Rule::Delete(d) => {
                assert_eq!(d.head.predicate, "Edge");
                assert_eq!(d.body.atoms.len(), 1);
                assert_eq!(
                    d.wildcard_variables(),
                    std::iter::once(Variable::new("y")).collect()
                );
            }
            other => panic!("expected conditional delete, got {other:?}"),
        }
    }

    #[test]
    fn parse_conditional_delete_with_negation_and_comparison() {
        let rule =
            parse_rule("-Shifts(w, d, n, z) :- Shifts(w, d, n, z), not Unit(w), d = \"Sep/5\".")
                .unwrap();
        match rule {
            Rule::Delete(d) => {
                assert_eq!(d.body.negated.len(), 1);
                assert_eq!(d.body.comparisons.len(), 1);
                assert!(d.wildcard_variables().is_empty());
            }
            other => panic!("expected conditional delete, got {other:?}"),
        }
    }

    #[test]
    fn retraction_does_not_shadow_negative_numbers() {
        // '-' directly before a digit still lexes as a negative literal.
        let rule = parse_rule("R(x) :- S(x, -7).").unwrap();
        match rule {
            Rule::Tgd(t) => {
                assert_eq!(t.body.atoms[0].terms[1], Term::constant(Value::int(-7)));
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn retraction_parse_errors() {
        // Non-ground bare retraction.
        assert!(parse_rule("-R(x).").is_err());
        // '-' must be followed by an atom.
        assert!(parse_rule("- :- R(x).").is_err());
        // Missing terminator.
        assert!(parse_rule("-R(A)").is_err());
    }

    #[test]
    fn parse_program_with_retractions() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             -E(A, B).\n\
             -E(x, y) :- Banned(x).\n",
        )
        .unwrap();
        assert_eq!(program.tgds.len(), 1);
        assert_eq!(program.retractions.len(), 1);
        assert_eq!(program.deletions.len(), 1);
        assert!(program.validate().is_empty());
        assert_eq!(program.rule_count(), 3);
    }

    #[test]
    fn print_then_parse_round_trips() {
        let texts = [
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).",
            "! :- PatientUnit(u, d, p), not Unit(u).",
            "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).",
            "UnitWard(Standard, W1).",
            "-UnitWard(Standard, W1).",
            "-Edge(x, y) :- Banned(x), not Whitelisted(x).",
        ];
        for text in texts {
            let rule = parse_rule(text).unwrap();
            let printed = rule.to_string();
            let reparsed = parse_rule(&printed).unwrap();
            assert_eq!(rule, reparsed, "round-trip failed for {text}");
        }
    }

    #[test]
    fn quoted_lowercase_strings_stay_constants() {
        let rule = parse_rule(r#"R(x) :- S(x, "standard")."#).unwrap();
        match rule {
            Rule::Tgd(t) => {
                assert_eq!(t.body.atoms[0].terms[1], Term::constant("standard"));
            }
            other => panic!("expected TGD, got {other:?}"),
        }
    }
}
