//! Magic-set (demand) transformation for goal-directed chase evaluation.
//!
//! The paper's tractability story rests on a query needing only the
//! *relevant* portion of the contextual ontology — yet a materialized chase
//! derives everything.  [`magic_transform`] specializes a Datalog± program to
//! one conjunctive-query body so a bottom-up (chase) evaluator computes only
//! what the query can observe:
//!
//! 1. **Relevance restriction** — only rules whose head predicates the query
//!    (transitively) depends on are kept, via the predicate dependency graph
//!    ([`crate::graph::PredicateGraph::ancestors_of`]).  EGDs are included
//!    when their bodies touch a relevant predicate or anything relevant data
//!    can flow into (their unifications rewrite labeled nulls *globally*, so
//!    an EGD over a downstream relation can still turn a relevant null into a
//!    constant); the body predicates of an included EGD — and everything
//!    feeding them — must then be derived **unrestricted**, or unifications
//!    the full chase performs would be lost.
//! 2. **Sideways information passing** — the query's bound constants
//!    (constants in atoms, plus `x = c` comparisons) become *adornments*:
//!    each demanded predicate `P` with bound positions gets a magic predicate
//!    `__magic_P_<adornment>` seeded with the constants, every rule deriving
//!    `P` gets a copy guarded by the magic atom, and demand is propagated
//!    into the rule's own intensional body atoms through magic propagation
//!    rules — the standard generalized magic-set construction, adapted to
//!    Datalog±:
//!    * a bound head position holding an **existential** variable cannot be
//!      guarded (the guard would capture the variable and suppress null
//!      invention), so such rules fall back to unguarded-but-relevant;
//!    * rules with **conjunctive heads** (form (10)) are never guarded — a
//!      guard for one head atom would silently starve the others;
//!    * predicates feeding an included EGD (or a negated query atom) are
//!      never guarded, as above.
//!
//! The original predicate names are kept (guards are *added*, predicates are
//! not renamed), so a demanded relation holds the union of all demanded
//! derivations plus its extensional rows — a superset of what the query
//! needs and a subset of the full chase, which is exactly the soundness
//! envelope certain-answer equality needs.
//!
//! Negative constraints are dropped: demand-driven evaluation answers
//! queries, it does not audit consistency (the full assessment path does).

use crate::atom::{Atom, CompareOp, Conjunction};
use crate::graph::PredicateGraph;
use crate::program::Program;
use crate::rule::Tgd;
use crate::term::{Term, Variable};
use ontodq_relational::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A set of bound argument positions (0-based) of one predicate.
pub type BoundSet = BTreeSet<usize>;

/// Aggregate statistics of one [`magic_transform`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// TGDs of the input program dropped as irrelevant to the query.
    pub pruned_tgds: usize,
    /// EGDs dropped because no relevant data can reach their bodies.
    pub pruned_egds: usize,
    /// Rule copies that carry a magic guard atom.
    pub guarded_rules: usize,
    /// Magic propagation rules emitted.
    pub propagation_rules: usize,
    /// Distinct magic predicates introduced.
    pub magic_predicates: usize,
    /// Intensional predicates demanded without any binding (derived in
    /// full, relevance-restricted only).
    pub fully_demanded: usize,
}

/// The output of [`magic_transform`]: a query-specialized program plus the
/// magic seed facts that start the demand propagation.
#[derive(Debug, Clone)]
pub struct DemandProgram {
    /// The specialized program: relevance-restricted rules, magic-guarded
    /// copies, magic propagation rules, included EGDs, relevant facts.  No
    /// negative constraints.
    pub program: Program,
    /// Magic seed facts `(magic predicate, constants tuple)` extracted from
    /// the query's bound positions; the caller inserts them before chasing
    /// (they seed the first delta).
    pub seeds: Vec<(String, Tuple)>,
    /// Every predicate the demand chase reads or writes (excluding the
    /// magic predicates): the extensional relations to retain when pruning
    /// the input instance.
    pub relevant: BTreeSet<String>,
    /// Transformation statistics.
    pub stats: DemandStats,
}

impl DemandProgram {
    /// `true` when the transformation found at least one usable binding
    /// (some rule carries a magic guard).
    pub fn is_guarded(&self) -> bool {
        self.stats.guarded_rules > 0
    }
}

/// The name of the magic predicate for `predicate` under `bound` positions,
/// e.g. `__magic_PatientUnit_ffb` for arity 3 with position 2 bound.  The
/// `__magic_` prefix is reserved: ontology and context predicates follow the
/// paper's capitalized naming, so generated magic predicates cannot collide
/// with them.
fn magic_name(predicate: &str, bound: &BoundSet, arity: usize) -> String {
    let adornment: String = (0..arity)
        .map(|i| if bound.contains(&i) { 'b' } else { 'f' })
        .collect();
    format!("__magic_{predicate}_{adornment}")
}

/// Constants the query equates variables with (`x = c` / `c = x`
/// comparisons).  A variable equated to two distinct constants is dropped
/// (the query is unsatisfiable; leaving the variable unbound stays sound).
fn query_constants(query: &Conjunction) -> BTreeMap<Variable, Value> {
    let mut map: BTreeMap<Variable, Value> = BTreeMap::new();
    let mut conflicting: BTreeSet<Variable> = BTreeSet::new();
    for cmp in &query.comparisons {
        if cmp.op != CompareOp::Eq {
            continue;
        }
        if let (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) =
            (&cmp.left, &cmp.right)
        {
            if let Some(previous) = map.insert(*v, *c) {
                if previous != *c {
                    conflicting.insert(*v);
                }
            }
        }
    }
    for v in conflicting {
        map.remove(&v);
    }
    map
}

/// One pending demand: a predicate, either fully (`None`) or under a set of
/// bound positions.
type Demand = (String, Option<BoundSet>);

/// Specialize `program` to `query` — see the module docs for the
/// construction and its soundness envelope.
pub fn magic_transform(program: &Program, query: &Conjunction) -> DemandProgram {
    let graph = PredicateGraph::build(program);
    let idb = program.idb_predicates();

    // ------------------------------------------------------------------
    // Phase 1: relevance closure (predicates + EGDs).
    // ------------------------------------------------------------------
    let mut relevant: BTreeSet<String> = query
        .atoms
        .iter()
        .chain(query.negated.iter())
        .map(|a| a.predicate.clone())
        .collect();
    let mut egd_included = vec![false; program.egds.len()];
    loop {
        let seeds: Vec<&str> = relevant.iter().map(String::as_str).collect();
        let closed = graph.ancestors_of(&seeds);
        let mut changed = closed.len() != relevant.len();
        relevant = closed;
        // Negated body atoms of included TGDs: the predicate graph only
        // carries positive edges, but negation-as-failure reads the negated
        // predicate's *full* extension — its rules (and their inputs) are
        // relevant even though no positive edge reaches the rule's head.
        for tgd in &program.tgds {
            if tgd.head.iter().any(|a| relevant.contains(&a.predicate)) {
                for atom in &tgd.body.negated {
                    changed |= relevant.insert(atom.predicate.clone());
                }
            }
        }
        let refs: Vec<&str> = relevant.iter().map(String::as_str).collect();
        // Everything relevant data can flow into; `reachable_from` seeds
        // its result with the inputs, so this is a superset of `relevant`.
        let forward = graph.reachable_from(&refs);
        for (index, egd) in program.egds.iter().enumerate() {
            if egd_included[index] {
                continue;
            }
            let touches = egd
                .body
                .atoms
                .iter()
                .chain(egd.body.negated.iter())
                .any(|a| forward.contains(&a.predicate));
            if touches {
                egd_included[index] = true;
                changed = true;
                for atom in egd.body.atoms.iter().chain(egd.body.negated.iter()) {
                    relevant.insert(atom.predicate.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Predicates that must be derived unrestricted (no magic guards):
    // ancestors of included EGD bodies and of negated atoms — wherever a
    // query or rule body reads a predicate under negation, its full
    // extension matters, not just the demanded slice.
    let mut unrestricted_seeds: BTreeSet<&str> =
        query.negated.iter().map(|a| a.predicate.as_str()).collect();
    for tgd in &program.tgds {
        if tgd.head.iter().any(|a| relevant.contains(&a.predicate)) {
            for atom in &tgd.body.negated {
                unrestricted_seeds.insert(atom.predicate.as_str());
            }
        }
    }
    for (index, egd) in program.egds.iter().enumerate() {
        if egd_included[index] {
            for atom in egd.body.atoms.iter().chain(egd.body.negated.iter()) {
                unrestricted_seeds.insert(atom.predicate.as_str());
            }
        }
    }
    let unrestricted = graph.ancestors_of(&unrestricted_seeds.into_iter().collect::<Vec<_>>());

    let included_tgds: Vec<&Tgd> = program
        .tgds
        .iter()
        .filter(|t| t.head.iter().any(|a| relevant.contains(&a.predicate)))
        .collect();

    // ------------------------------------------------------------------
    // Phase 2: demand worklist over (predicate, adornment) pairs.
    // ------------------------------------------------------------------
    let constants = query_constants(query);
    let mut full_demand: BTreeSet<String> = BTreeSet::new();
    let mut bound_demands: BTreeMap<String, BTreeSet<BoundSet>> = BTreeMap::new();
    let mut seed_facts: BTreeMap<(String, BoundSet), BTreeSet<Tuple>> = BTreeMap::new();
    let mut queue: VecDeque<Demand> = VecDeque::new();

    let mut demand_full =
        |pred: &str, full: &mut BTreeSet<String>, queue: &mut VecDeque<Demand>| {
            if full.insert(pred.to_string()) {
                queue.push_back((pred.to_string(), None));
            }
        };
    let mut demand_bound = |pred: &str,
                            bs: BoundSet,
                            bounds: &mut BTreeMap<String, BTreeSet<BoundSet>>,
                            queue: &mut VecDeque<Demand>| {
        if bounds
            .entry(pred.to_string())
            .or_default()
            .insert(bs.clone())
        {
            queue.push_back((pred.to_string(), Some(bs)));
        }
    };

    // Every intensional predicate that must stay unrestricted is demanded in
    // full up front (EGD feeders are not always reachable from the query's
    // own demand propagation).
    for pred in unrestricted.iter() {
        if idb.contains(pred) && relevant.contains(pred) {
            demand_full(pred, &mut full_demand, &mut queue);
        }
    }
    for atom in &query.negated {
        if idb.contains(&atom.predicate) {
            demand_full(&atom.predicate, &mut full_demand, &mut queue);
        }
    }

    // Demands from the query's own atoms: bound positions are positions
    // holding a constant or a constant-equated variable.
    for atom in &query.atoms {
        if !idb.contains(&atom.predicate) {
            continue;
        }
        let mut bs = BoundSet::new();
        let mut values: Vec<Value> = Vec::new();
        for (position, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => constants.get(v).copied(),
            };
            if let Some(value) = value {
                bs.insert(position);
                values.push(value);
            }
        }
        if bs.is_empty() || unrestricted.contains(&atom.predicate) {
            demand_full(&atom.predicate, &mut full_demand, &mut queue);
        } else {
            seed_facts
                .entry((atom.predicate.clone(), bs.clone()))
                .or_default()
                .insert(Tuple::new(values));
            demand_bound(&atom.predicate, bs, &mut bound_demands, &mut queue);
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: process demands, emitting guarded copies and propagation
    // rules as each (predicate, adornment) pair is first seen.
    // ------------------------------------------------------------------
    let mut out = Program::new();
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut stats = DemandStats::default();
    let mut push_rule = |tgd: Tgd, out: &mut Program, emitted: &mut BTreeSet<String>| -> bool {
        let key = tgd.to_string();
        if emitted.insert(key) {
            out.tgds.push(tgd);
            true
        } else {
            false
        }
    };

    while let Some((pred, demand)) = queue.pop_front() {
        for tgd in included_tgds
            .iter()
            .filter(|t| t.head.iter().any(|a| a.predicate == pred))
        {
            // Guardability of this rule under this demand.
            let guardable_bs = match (&demand, tgd.head.len()) {
                (Some(bs), 1) if !unrestricted.contains(&pred) => {
                    let head = &tgd.head[0];
                    let body_vars = tgd.body_variables();
                    let guardable = bs.iter().all(|&k| match head.terms.get(k) {
                        Some(Term::Const(_)) => true,
                        Some(Term::Var(v)) => body_vars.contains(v),
                        None => false,
                    });
                    guardable.then(|| bs.clone())
                }
                // Conjunctive heads and unrestricted predicates are never
                // guarded; a full demand never is.
                _ => None,
            };

            match guardable_bs {
                Some(bs) => {
                    let head = &tgd.head[0];
                    let magic = magic_name(&pred, &bs, head.arity());
                    let guard =
                        Atom::new(magic, bs.iter().map(|&k| head.terms[k].clone()).collect());
                    let bound_vars: BTreeSet<Variable> = bs
                        .iter()
                        .filter_map(|&k| head.terms[k].as_var().copied())
                        .collect();
                    let mut body = tgd.body.clone();
                    body.atoms.insert(0, guard.clone());
                    let guarded = Tgd {
                        label: tgd.label.clone(),
                        body,
                        head: tgd.head.clone(),
                    };
                    if push_rule(guarded, &mut out, &mut emitted) {
                        stats.guarded_rules += 1;
                    }
                    propagate_body(
                        tgd,
                        &bound_vars,
                        Some(&guard),
                        &idb,
                        &unrestricted,
                        &mut full_demand,
                        &mut bound_demands,
                        &mut seed_facts,
                        &mut queue,
                        &mut demand_full,
                        &mut demand_bound,
                        &mut out,
                        &mut emitted,
                        &mut push_rule,
                        &mut stats,
                    );
                }
                None => {
                    // Unguarded: the rule joins in full (relevance-restricted
                    // only).  Conjunctive heads additionally demand every
                    // head predicate in full, so their co-derived relations
                    // are complete too.
                    if tgd.head.len() > 1 {
                        for atom in &tgd.head {
                            demand_full(&atom.predicate, &mut full_demand, &mut queue);
                        }
                    }
                    push_rule((*tgd).clone(), &mut out, &mut emitted);
                    propagate_body(
                        tgd,
                        &BTreeSet::new(),
                        None,
                        &idb,
                        &unrestricted,
                        &mut full_demand,
                        &mut bound_demands,
                        &mut seed_facts,
                        &mut queue,
                        &mut demand_full,
                        &mut demand_bound,
                        &mut out,
                        &mut emitted,
                        &mut push_rule,
                        &mut stats,
                    );
                }
            }
        }
    }
    stats.propagation_rules = out
        .tgds
        .iter()
        .filter(|t| t.head.len() == 1 && t.head[0].predicate.starts_with("__magic_"))
        .count();
    stats.fully_demanded = full_demand.len();

    // Included EGDs, verbatim.
    for (index, egd) in program.egds.iter().enumerate() {
        if egd_included[index] {
            out.egds.push(egd.clone());
        }
    }
    // Relevant facts.
    for fact in &program.facts {
        if relevant.contains(&fact.atom().predicate) {
            out.facts.push(fact.clone());
        }
    }

    stats.pruned_tgds = program.tgds.len() - included_tgds.len();
    stats.pruned_egds = egd_included.iter().filter(|included| !**included).count();

    // Magic predicates some emitted rule actually consumes or derives.
    let mut magic_preds: BTreeSet<String> = BTreeSet::new();
    for tgd in &out.tgds {
        for atom in tgd.body.atoms.iter().chain(tgd.head.iter()) {
            if atom.predicate.starts_with("__magic_") {
                magic_preds.insert(atom.predicate.clone());
            }
        }
    }

    // Flatten the seed map, dropping seeds no guard consumes — either the
    // predicate ended up fully demanded, or every rule under this demand
    // fell back to the unguarded copy (existential bound position, …).
    let mut seeds: Vec<(String, Tuple)> = Vec::new();
    for ((pred, bs), tuples) in seed_facts {
        if full_demand.contains(&pred) {
            continue;
        }
        // Resolve the arity from the program; the rule side used the head
        // atom's arity, which the program's arity-consistency validation
        // keeps equal.
        let fallback = bs.iter().max().map(|m| m + 1).unwrap_or(0);
        let arity = program.predicates().get(&pred).copied().unwrap_or(fallback);
        let name = magic_name(&pred, &bs, arity);
        if !magic_preds.contains(&name) {
            continue;
        }
        for tuple in tuples {
            seeds.push((name.clone(), tuple));
        }
    }
    stats.magic_predicates = magic_preds.len();

    DemandProgram {
        program: out,
        seeds,
        relevant,
        stats,
    }
}

/// Propagate demand from one rule's (possibly guarded) evaluation into its
/// intensional body atoms; emits magic propagation rules / seeds and
/// enqueues the new demands.
#[allow(clippy::too_many_arguments)]
fn propagate_body(
    tgd: &Tgd,
    bound_vars: &BTreeSet<Variable>,
    guard: Option<&Atom>,
    idb: &BTreeSet<String>,
    unrestricted: &BTreeSet<String>,
    full_demand: &mut BTreeSet<String>,
    bound_demands: &mut BTreeMap<String, BTreeSet<BoundSet>>,
    seed_facts: &mut BTreeMap<(String, BoundSet), BTreeSet<Tuple>>,
    queue: &mut VecDeque<Demand>,
    demand_full: &mut impl FnMut(&str, &mut BTreeSet<String>, &mut VecDeque<Demand>),
    demand_bound: &mut impl FnMut(
        &str,
        BoundSet,
        &mut BTreeMap<String, BTreeSet<BoundSet>>,
        &mut VecDeque<Demand>,
    ),
    out: &mut Program,
    emitted: &mut BTreeSet<String>,
    push_rule: &mut impl FnMut(Tgd, &mut Program, &mut BTreeSet<String>) -> bool,
    _stats: &mut DemandStats,
) {
    for atom in &tgd.body.atoms {
        if !idb.contains(&atom.predicate) {
            continue;
        }
        if unrestricted.contains(&atom.predicate) {
            demand_full(&atom.predicate, full_demand, queue);
            continue;
        }
        let mut bs = BoundSet::new();
        let mut terms: Vec<Term> = Vec::new();
        for (position, term) in atom.terms.iter().enumerate() {
            let bound = match term {
                Term::Const(_) => true,
                Term::Var(v) => bound_vars.contains(v),
            };
            if bound {
                bs.insert(position);
                terms.push(term.clone());
            }
        }
        if bs.is_empty() {
            demand_full(&atom.predicate, full_demand, queue);
            continue;
        }
        let magic = magic_name(&atom.predicate, &bs, atom.arity());
        match guard {
            Some(guard) => {
                let propagation = Tgd {
                    label: None,
                    body: Conjunction::positive(vec![guard.clone()]),
                    head: vec![Atom::new(magic, terms)],
                };
                push_rule(propagation, out, emitted);
            }
            None => {
                // No guard: the demand is unconditional, so the magic facts
                // are seeds rather than derived.  All bound terms are
                // constants here (no guard means no bound variables).
                let values: Vec<Value> =
                    terms.iter().filter_map(|t| t.as_const().copied()).collect();
                if values.len() == terms.len() {
                    seed_facts
                        .entry((atom.predicate.clone(), bs.clone()))
                        .or_default()
                        .insert(Tuple::new(values));
                }
            }
        }
        demand_bound(&atom.predicate, bs, bound_demands, queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::rule::Rule;

    fn hospital_rules() -> Program {
        parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap()
    }

    fn body_of(text: &str) -> Conjunction {
        match crate::parser::parse_rule(&format!("! :- {text}")).unwrap() {
            Rule::Constraint(nc) => nc.body,
            other => panic!("expected a constraint body, got {other}"),
        }
    }

    #[test]
    fn irrelevant_rules_are_pruned() {
        let program = hospital_rules();
        let demand = magic_transform(&program, &body_of("PatientUnit(u, d, p)."));
        // The Shifts rule cannot feed PatientUnit.
        assert_eq!(demand.stats.pruned_tgds, 1);
        assert!(demand
            .program
            .tgds
            .iter()
            .all(|t| t.head_predicates() != vec!["Shifts"]));
        assert!(demand.relevant.contains("PatientWard"));
        assert!(demand.relevant.contains("UnitWard"));
        assert!(!demand.relevant.contains("WorkingSchedules"));
    }

    #[test]
    fn unbound_queries_are_relevance_restricted_only() {
        let program = hospital_rules();
        let demand = magic_transform(&program, &body_of("PatientUnit(u, d, p)."));
        assert!(!demand.is_guarded());
        assert!(demand.seeds.is_empty());
        assert_eq!(demand.stats.fully_demanded, 1);
        // The PatientUnit rule survives verbatim.
        assert_eq!(demand.program.tgds.len(), 1);
        assert_eq!(demand.program.tgds[0], program.tgds[0]);
    }

    #[test]
    fn bound_constants_produce_guards_and_seeds() {
        let program = hospital_rules();
        let demand = magic_transform(
            &program,
            &body_of("PatientUnit(u, d, p), p = \"Tom Waits\"."),
        );
        assert!(demand.is_guarded());
        assert_eq!(demand.stats.guarded_rules, 1);
        assert_eq!(demand.seeds.len(), 1);
        let (magic, tuple) = &demand.seeds[0];
        assert_eq!(magic, "__magic_PatientUnit_ffb");
        assert_eq!(tuple, &Tuple::from_iter(["Tom Waits"]));
        // The guarded rule leads with the magic atom over the frontier var.
        let guarded = demand
            .program
            .tgds
            .iter()
            .find(|t| t.head_predicates() == vec!["PatientUnit"])
            .unwrap();
        assert_eq!(guarded.body.atoms[0].predicate, "__magic_PatientUnit_ffb");
        assert_eq!(guarded.body.atoms[0].terms, vec![Term::var("p")]);
    }

    #[test]
    fn constants_inside_query_atoms_bind_too() {
        let program = hospital_rules();
        let demand = magic_transform(&program, &body_of("PatientUnit(Standard, d, p)."));
        assert!(demand.is_guarded());
        assert_eq!(demand.seeds.len(), 1);
        assert_eq!(demand.seeds[0].0, "__magic_PatientUnit_bff");
        assert_eq!(demand.seeds[0].1, Tuple::from_iter(["Standard"]));
    }

    #[test]
    fn demand_propagates_through_recursive_rules() {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let demand = magic_transform(&program, &body_of("T(a, y), a = \"n0\"."));
        // Both T rules get guarded copies, and the recursive rule propagates
        // demand back into T (x stays bound across the recursion).
        assert_eq!(demand.stats.guarded_rules, 2);
        assert!(demand.stats.propagation_rules >= 1);
        let propagation = demand
            .program
            .tgds
            .iter()
            .find(|t| t.head[0].predicate.starts_with("__magic_T_"))
            .unwrap();
        assert_eq!(propagation.body.atoms[0].predicate, "__magic_T_bf");
        assert_eq!(
            demand.seeds,
            vec![("__magic_T_bf".to_string(), Tuple::from_iter(["n0"]),)]
        );
    }

    #[test]
    fn existential_head_positions_disable_the_guard() {
        // z is existential: a guard on position 3 would capture it and
        // suppress null invention — the rule must stay unguarded.
        let program = hospital_rules();
        let demand = magic_transform(&program, &body_of("Shifts(w, d, n, s), s = \"morning\"."));
        assert!(!demand.is_guarded());
        assert!(demand.seeds.is_empty());
        assert!(demand
            .program
            .tgds
            .iter()
            .any(|t| t.head_predicates() == vec!["Shifts"]
                && !t.body.atoms[0].predicate.starts_with("__magic_")));
    }

    #[test]
    fn bindable_positions_of_existential_rules_are_still_guarded() {
        // w is a frontier variable of the Shifts rule: binding the ward is
        // fine even though the shift position is existential.
        let program = hospital_rules();
        let demand = magic_transform(&program, &body_of("Shifts(W2, d, n, s)."));
        assert!(demand.is_guarded());
        assert_eq!(demand.seeds[0].0, "__magic_Shifts_bfff");
        assert_eq!(demand.seeds[0].1, Tuple::from_iter(["W2"]));
    }

    #[test]
    fn conjunctive_heads_are_never_guarded() {
        let program = parse_program(
            "InstitutionUnit(i, u), PatientUnit(u, d, p) :- DischargePatients(i, d, p).\n",
        )
        .unwrap();
        let demand = magic_transform(
            &program,
            &body_of("PatientUnit(u, d, p), p = \"Tom Waits\"."),
        );
        assert!(!demand.is_guarded());
        assert_eq!(demand.program.tgds.len(), 1);
        assert_eq!(demand.program.tgds[0], program.tgds[0]);
    }

    #[test]
    fn egds_touching_relevant_data_are_kept_and_disable_guards() {
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w2, d, n, s2).\n",
        )
        .unwrap();
        let demand = magic_transform(&program, &body_of("Shifts(W2, d, n, s)."));
        // The EGD equates shifts across wards: restricting Shifts to W2
        // would lose the unifications, so the rule stays unguarded and the
        // EGD rides along.
        assert_eq!(demand.program.egds.len(), 1);
        assert!(!demand.is_guarded());
    }

    #[test]
    fn egds_over_unreachable_predicates_are_pruned() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             x = y :- Disconnected(x, y).\n",
        )
        .unwrap();
        let demand = magic_transform(
            &program,
            &body_of("PatientUnit(u, d, p), p = \"Tom Waits\"."),
        );
        assert_eq!(demand.stats.pruned_egds, 1);
        assert!(demand.program.egds.is_empty());
        assert!(demand.is_guarded());
    }

    #[test]
    fn negated_query_atoms_force_full_derivation() {
        let program = hospital_rules();
        let demand = magic_transform(
            &program,
            &body_of("PatientUnit(u, d, p), p = \"Tom Waits\", not Shifts(w, d, n, s)."),
        );
        // Shifts must be derived in full for negation-as-failure to agree
        // with the full chase; PatientUnit could be guarded, but here it is
        // not unrestricted, so its guard stands.
        assert!(demand.relevant.contains("WorkingSchedules"));
        assert!(demand
            .program
            .tgds
            .iter()
            .any(|t| t.head_predicates() == vec!["Shifts"]
                && !t.body.atoms[0].predicate.starts_with("__magic_")));
    }

    #[test]
    fn negated_tgd_body_atoms_force_full_derivation_of_their_rules() {
        // `Good` reads `Flagged` under negation; `Flagged` has no positive
        // edge into `Good`, but its rules (and their EDB inputs) must stay —
        // pruning them would make the demand chase return extra (unsound)
        // answers for everything `Flagged` would have excluded.
        let program = parse_program(
            "Flagged(p) :- Errors(p).\n\
             M2(p) :- M(p).\n",
        )
        .unwrap();
        let mut with_negation = program;
        with_negation.tgds.push(Tgd {
            label: None,
            body: Conjunction::positive(vec![Atom::with_vars("M2", &["p"])])
                .and_not(Atom::with_vars("Flagged", &["p"])),
            head: vec![Atom::with_vars("Good", &["p"])],
        });
        let demand = magic_transform(&with_negation, &body_of("Good(p)."));
        assert!(demand.relevant.contains("Flagged"));
        assert!(demand.relevant.contains("Errors"));
        // The Flagged rule is emitted, unguarded.
        assert!(demand
            .program
            .tgds
            .iter()
            .any(|t| t.head_predicates() == vec!["Flagged"]
                && !t.body.atoms[0].predicate.starts_with("__magic_")));
    }

    #[test]
    fn relevant_facts_ride_along() {
        let mut program = hospital_rules();
        program.extend(parse_program("UnitWard(Standard, W1).\nOther(A1).\n").unwrap());
        let demand = magic_transform(&program, &body_of("PatientUnit(u, d, p)."));
        assert_eq!(demand.program.facts.len(), 1);
        assert_eq!(demand.program.facts[0].atom().predicate, "UnitWard");
    }

    #[test]
    fn constraints_are_dropped() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             ! :- PatientUnit(u, d, p), not Unit(u).\n",
        )
        .unwrap();
        let demand = magic_transform(&program, &body_of("PatientUnit(u, d, p)."));
        assert!(demand.program.constraints.is_empty());
    }

    #[test]
    fn contradictory_equalities_leave_the_variable_unbound() {
        let program = hospital_rules();
        let demand = magic_transform(
            &program,
            &body_of("PatientUnit(u, d, p), p = \"Tom Waits\", p = \"Lou Reed\"."),
        );
        assert!(!demand.is_guarded());
        assert!(demand.seeds.is_empty());
    }

    #[test]
    fn magic_names_encode_predicate_and_adornment() {
        let bs: BoundSet = [0, 2].into_iter().collect();
        assert_eq!(magic_name("PatientUnit", &bs, 3), "__magic_PatientUnit_bfb");
        assert_eq!(magic_name("T", &BoundSet::new(), 2), "__magic_T_ff");
    }
}
