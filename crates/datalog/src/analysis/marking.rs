//! The sticky-marking procedure of Calì, Gottlob and Pieris.
//!
//! Stickiness and weak stickiness are defined through a *marking* of variable
//! occurrences in TGD bodies:
//!
//! 1. (base) for every TGD σ and every variable `v` that occurs in the body
//!    of σ but **not** in its head, mark `v` in σ;
//! 2. (propagation) for every TGD σ and every frontier variable `v` of σ, if
//!    `v` occurs in the head of σ at a position that is *marked* — i.e. some
//!    marked variable of some TGD occurs at that position in that TGD's body
//!    — then mark `v` in σ; repeat until fixpoint.
//!
//! The program is **sticky** when no marked variable occurs more than once in
//! the body of its TGD; it is **weakly sticky** when every variable that
//! occurs more than once in a body is either non-marked or occurs at least
//! once in a position of finite rank.

use crate::program::Position;
use crate::rule::Tgd;
use crate::term::{Term, Variable};
use std::collections::BTreeSet;

/// The result of the marking procedure over a set of TGDs.
#[derive(Debug, Clone, Default)]
pub struct Marking {
    /// Pairs (TGD index, variable) such that the variable is marked in the
    /// body of that TGD.
    marked: BTreeSet<(usize, Variable)>,
    /// Positions at which some marked variable occurs in the body of its TGD.
    marked_positions: BTreeSet<Position>,
}

impl Marking {
    /// Run the marking procedure to fixpoint.
    pub fn compute(tgds: &[Tgd]) -> Self {
        let mut marking = Marking::default();

        // Base step: body variables that do not appear in the head.
        for (idx, tgd) in tgds.iter().enumerate() {
            let head_vars = tgd.head_variables();
            for var in tgd.body_variables() {
                if !head_vars.contains(&var) {
                    marking.mark(idx, var, tgds);
                }
            }
        }

        // Propagation step, to fixpoint.
        loop {
            let mut changed = false;
            for (idx, tgd) in tgds.iter().enumerate() {
                for var in tgd.frontier() {
                    if marking.marked.contains(&(idx, var)) {
                        continue;
                    }
                    // Head positions of `var` in this TGD.
                    let occurs_at_marked_position = tgd.head.iter().any(|head_atom| {
                        head_atom.terms.iter().enumerate().any(|(i, term)| {
                            term.as_var() == Some(&var)
                                && marking
                                    .marked_positions
                                    .contains(&Position::new(head_atom.predicate.clone(), i))
                        })
                    });
                    if occurs_at_marked_position {
                        marking.mark(idx, var, tgds);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        marking
    }

    fn mark(&mut self, tgd_index: usize, var: Variable, tgds: &[Tgd]) {
        if !self.marked.insert((tgd_index, var)) {
            return;
        }
        // Record the body positions where the newly marked variable occurs.
        let tgd = &tgds[tgd_index];
        for atom in &tgd.body.atoms {
            for (i, term) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    if v == &var {
                        self.marked_positions
                            .insert(Position::new(atom.predicate.clone(), i));
                    }
                }
            }
        }
    }

    /// Is `var` marked in the body of TGD number `tgd_index`?
    pub fn is_marked(&self, tgd_index: usize, var: &Variable) -> bool {
        self.marked.contains(&(tgd_index, *var))
    }

    /// The set of positions at which marked variables occur (in bodies).
    pub fn marked_positions(&self) -> &BTreeSet<Position> {
        &self.marked_positions
    }

    /// All (TGD index, variable) marked pairs.
    pub fn marked_pairs(&self) -> &BTreeSet<(usize, Variable)> {
        &self.marked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn marking_of(text: &str) -> (Vec<Tgd>, Marking) {
        let program = parse_program(text).unwrap();
        let marking = Marking::compute(&program.tgds);
        (program.tgds, marking)
    }

    #[test]
    fn variables_dropped_by_the_head_are_marked() {
        // w and t are dropped by the heads, so both are marked; u, d, p, n
        // survive into heads and are not marked (no propagation applies).
        let (tgds, marking) = marking_of(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        );
        assert!(marking.is_marked(0, &Variable::new("w")));
        assert!(!marking.is_marked(0, &Variable::new("u")));
        assert!(!marking.is_marked(0, &Variable::new("d")));
        assert!(marking.is_marked(1, &Variable::new("t")));
        assert!(marking.is_marked(1, &Variable::new("u")));
        assert!(!marking.is_marked(1, &Variable::new("w")));
        assert_eq!(tgds.len(), 2);
        // Marked positions include the body positions of w in rule 0.
        assert!(marking
            .marked_positions()
            .contains(&Position::new("PatientWard", 0)));
        assert!(marking
            .marked_positions()
            .contains(&Position::new("UnitWard", 1)));
    }

    #[test]
    fn propagation_marks_frontier_variables() {
        // In the first rule, y is dropped → marked → marks position Q[0] and
        // P[1]?  y occurs in body at Q(x,y)[1].  Then in the second rule the
        // frontier variable v occurs in the head at position Q[1]... build a
        // chain where propagation is required.
        let (_, marking) = marking_of(
            "P(x) :- Q(x, y).\n\
             Q(v, v) :- R(v).\n",
        );
        // Base: y marked in rule 0 → marked position Q[1].
        // Propagation: in rule 1, frontier var v occurs in head Q at position
        // 1 (a marked position) → v marked in rule 1.
        assert!(marking.is_marked(0, &Variable::new("y")));
        assert!(marking.is_marked(1, &Variable::new("v")));
        assert!(marking.marked_positions().contains(&Position::new("R", 0)));
    }

    #[test]
    fn no_marking_for_full_identity_rules() {
        let (_, marking) = marking_of("Copy(x, y) :- Orig(x, y).\n");
        assert!(marking.marked_pairs().is_empty());
        assert!(marking.marked_positions().is_empty());
    }

    #[test]
    fn propagation_reaches_fixpoint_over_chains() {
        // A chain of three rules where marking must flow backwards.
        let (_, marking) = marking_of(
            "A(x) :- B(x, y).\n\
             B(u, u) :- C(u, w).\n\
             C(v, v) :- D(v).\n",
        );
        assert!(marking.is_marked(0, &Variable::new("y")));
        assert!(marking.is_marked(1, &Variable::new("w")));
        // u is in the frontier of rule 1 and appears in the head at B[1],
        // which is marked (y occurs at B[1] in rule 0's body) → marked.
        assert!(marking.is_marked(1, &Variable::new("u")));
        // v occurs in rule 2's head at C[0] and C[1]; C[1] is marked because
        // w occurs there in rule 1's body → v marked.
        assert!(marking.is_marked(2, &Variable::new("v")));
    }
}
