//! Syntactic analyses of Datalog± programs.
//!
//! * [`marking`] — the sticky-marking procedure;
//! * [`mod@classify`] — membership tests for linear, guarded, weakly guarded,
//!   sticky, weakly sticky and weakly acyclic TGD sets, and a combined
//!   [`classify::ClassReport`];
//! * [`separability`] — the sufficient condition for EGDs to be separable
//!   from the TGDs, as used by the paper for dimensional constraints;
//! * [`magic`] — the magic-set (demand) transformation specializing a
//!   program to one query's bound constants, for goal-directed chase
//!   evaluation;
//! * [`mod@lint`] — the `ontodq-lint` diagnostics pass: safety, arity and
//!   stratification checks, dead/unreachable/cartesian/duplicate rule lints,
//!   EGD-separability surfacing, and the [`lint::TerminationCertificate`]
//!   the chase engine consumes.

pub mod classify;
pub mod lint;
pub mod magic;
pub mod marking;
pub mod separability;

pub use classify::{
    classify, classify_tgds, is_guarded, is_linear, is_sticky, is_weakly_acyclic,
    is_weakly_guarded, is_weakly_sticky, ClassReport, DatalogClass,
};
pub use lint::{
    lint, lint_with, Diagnostic, LintReport, RuleRef, Severity, TerminationCertificate,
};
pub use magic::{magic_transform, BoundSet, DemandProgram, DemandStats};
pub use marking::Marking;
pub use separability::{check_egds, check_program, EgdSeparability, SeparabilityReport};
