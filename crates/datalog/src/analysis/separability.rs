//! Separability of EGDs from TGDs.
//!
//! Datalog± tractability results for TGD classes extend to programs with EGDs
//! only when the EGDs are *separable* (non-conflicting) from the TGDs: firing
//! the EGDs never changes the answers produced by the TGDs-only chase on
//! consistent instances, so query answering may ignore the EGDs apart from an
//! initial consistency check.
//!
//! The paper uses a sufficient syntactic condition (Section III): in the
//! multidimensional setting, an EGD is separable when the variables it
//! equates occur in its body **only at positions where no labeled null can
//! ever appear** — in MD ontologies these are the *categorical* positions,
//! whose values always come from the fixed dimension instances.  In the
//! general Datalog± setting we approximate "no null can appear" with the
//! complement of the affected positions of the TGD set, which is exactly the
//! guarantee required: if the equated values are always non-null constants,
//! an EGD violation is a hard inconsistency rather than a null unification,
//! so the chase result is not altered by the EGD.

use crate::graph::PositionGraph;
use crate::program::{Position, Program};
use crate::rule::{Egd, Tgd};
use crate::term::{Term, Variable};
use std::collections::BTreeSet;

/// The separability verdict for one EGD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EgdSeparability {
    /// Index of the EGD in the program.
    pub egd_index: usize,
    /// Whether the sufficient syntactic condition holds.
    pub separable: bool,
    /// Positions of the equated variables that are affected (the witnesses
    /// for non-separability); empty when `separable` is true.
    pub offending_positions: Vec<Position>,
}

/// A report over all EGDs of a program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeparabilityReport {
    /// Per-EGD verdicts, in program order.
    pub egds: Vec<EgdSeparability>,
}

impl SeparabilityReport {
    /// `true` when every EGD satisfies the sufficient condition.
    pub fn all_separable(&self) -> bool {
        self.egds.iter().all(|e| e.separable)
    }

    /// The indices of EGDs that failed the check.
    pub fn non_separable_indices(&self) -> Vec<usize> {
        self.egds
            .iter()
            .filter(|e| !e.separable)
            .map(|e| e.egd_index)
            .collect()
    }
}

/// Positions at which `var` occurs in the body of `egd`.
fn body_positions_of(egd: &Egd, var: &Variable) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in &egd.body.atoms {
        for (i, term) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = term {
                if v == var {
                    out.push(Position::new(atom.predicate.clone(), i));
                }
            }
        }
    }
    out
}

/// Check one EGD against a set of affected positions.
pub fn check_egd(egd: &Egd, egd_index: usize, affected: &BTreeSet<Position>) -> EgdSeparability {
    let mut offending = Vec::new();
    for var in [&egd.left, &egd.right] {
        for pos in body_positions_of(egd, var) {
            if affected.contains(&pos) {
                offending.push(pos);
            }
        }
    }
    offending.sort();
    offending.dedup();
    EgdSeparability {
        egd_index,
        separable: offending.is_empty(),
        offending_positions: offending,
    }
}

/// Check every EGD of `program` against the affected positions of its TGDs.
pub fn check_program(program: &Program) -> SeparabilityReport {
    check_egds(&program.tgds, &program.egds)
}

/// Check explicit EGDs against explicit TGDs.
pub fn check_egds(tgds: &[Tgd], egds: &[Egd]) -> SeparabilityReport {
    let affected = PositionGraph::affected_positions(tgds);
    SeparabilityReport {
        egds: egds
            .iter()
            .enumerate()
            .map(|(i, e)| check_egd(e, i, &affected))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn egd_on_categorical_positions_is_separable() {
        // Rule (6) of the paper plus the dimensional rules: the equated
        // thermometer-type variables live at Thermometer[1], a position into
        // which no TGD ever writes, hence never affected.
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).\n",
        )
        .unwrap();
        let report = check_program(&program);
        assert!(report.all_separable());
        assert!(report.non_separable_indices().is_empty());
    }

    #[test]
    fn egd_on_existential_positions_is_flagged() {
        // The EGD equates shift values, but Shifts[3] is exactly where rule
        // (8) writes fresh nulls → not separable by the syntactic condition.
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w, d, n2, s2).\n",
        )
        .unwrap();
        let report = check_program(&program);
        assert!(!report.all_separable());
        assert_eq!(report.non_separable_indices(), vec![0]);
        let offending = &report.egds[0].offending_positions;
        assert!(offending.contains(&Position::new("Shifts", 3)));
    }

    #[test]
    fn programs_without_egds_are_trivially_separable() {
        let program = parse_program("A(x) :- B(x).\n").unwrap();
        let report = check_program(&program);
        assert!(report.all_separable());
        assert!(report.egds.is_empty());
    }

    #[test]
    fn downward_rule_10_breaks_separability_for_categorical_egds() {
        // With a form-(10) rule, fresh nulls may appear at a *categorical*
        // position (PatientUnit[0]); an EGD equating unit values is then no
        // longer syntactically separable — exactly the caveat in the paper's
        // Example 6 discussion.
        let program = parse_program(
            "InstitutionUnit(i, u), PatientUnit(u, d, p) :- DischargePatients(i, d, p).\n\
             u = u2 :- PatientUnit(u, d, p), PatientUnit(u2, d, p).\n",
        )
        .unwrap();
        let report = check_program(&program);
        assert!(!report.all_separable());
        assert!(report.egds[0]
            .offending_positions
            .contains(&Position::new("PatientUnit", 0)));
    }
}
