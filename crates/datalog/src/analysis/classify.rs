//! Membership tests for the Datalog± syntactic classes the paper appeals to,
//! and a combined classifier.
//!
//! The paper's central syntactic claim (Section III) is that multidimensional
//! ontologies with rules of forms (1)–(4) and (10) are **weakly sticky**, and
//! that conjunctive query answering over weakly-sticky programs is tractable
//! in data complexity.  This module provides the membership tests used to
//! verify that claim on concrete compiled ontologies, plus the neighbouring
//! classes (linear, guarded, weakly guarded, sticky, weakly acyclic) used for
//! comparison and for choosing query-answering strategies.

use crate::analysis::marking::Marking;
use crate::graph::PositionGraph;
use crate::program::{Position, Program};
use crate::rule::Tgd;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The syntactic classes, ordered roughly from most to least restrictive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DatalogClass {
    /// Every TGD has a single body atom.
    Linear,
    /// Every TGD has a guard atom containing all body variables.
    Guarded,
    /// Sticky: no marked variable occurs twice in a body.
    Sticky,
    /// Weakly acyclic: no special-edge cycle in the position graph.
    WeaklyAcyclic,
    /// Weakly guarded: a guard covers all variables at affected positions.
    WeaklyGuarded,
    /// Weakly sticky: repeated marked variables touch finite-rank positions.
    WeaklySticky,
    /// None of the above.
    Unrestricted,
}

impl fmt::Display for DatalogClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatalogClass::Linear => "linear",
            DatalogClass::Guarded => "guarded",
            DatalogClass::Sticky => "sticky",
            DatalogClass::WeaklyAcyclic => "weakly-acyclic",
            DatalogClass::WeaklyGuarded => "weakly-guarded",
            DatalogClass::WeaklySticky => "weakly-sticky",
            DatalogClass::Unrestricted => "unrestricted",
        };
        write!(f, "{name}")
    }
}

/// A full report of which classes a program's TGDs belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Linear membership.
    pub linear: bool,
    /// Guarded membership.
    pub guarded: bool,
    /// Weakly-guarded membership.
    pub weakly_guarded: bool,
    /// Sticky membership.
    pub sticky: bool,
    /// Weakly-sticky membership.
    pub weakly_sticky: bool,
    /// Weak acyclicity (terminating restricted chase).
    pub weakly_acyclic: bool,
    /// The most specific class in the order linear ⊂ guarded, sticky ⊂
    /// weakly-sticky, etc.
    pub most_specific: DatalogClass,
}

impl fmt::Display for ClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "linear={}, guarded={}, weakly-guarded={}, sticky={}, weakly-sticky={}, weakly-acyclic={}, most-specific={}",
            self.linear,
            self.guarded,
            self.weakly_guarded,
            self.sticky,
            self.weakly_sticky,
            self.weakly_acyclic,
            self.most_specific
        )
    }
}

/// Is every TGD linear (single body atom)?
pub fn is_linear(tgds: &[Tgd]) -> bool {
    tgds.iter().all(Tgd::is_linear)
}

/// Is every TGD guarded (some body atom contains all body variables)?
pub fn is_guarded(tgds: &[Tgd]) -> bool {
    tgds.iter().all(Tgd::is_guarded)
}

/// Is every TGD weakly guarded?  A TGD is weakly guarded (w.r.t. the whole
/// set) when some body atom contains all the body variables that occur
/// *only* at affected positions of the body.
pub fn is_weakly_guarded(tgds: &[Tgd]) -> bool {
    let affected = PositionGraph::affected_positions(tgds);
    tgds.iter().all(|tgd| {
        // Variables of the body that occur only at affected positions.
        let mut var_positions: BTreeMap<&str, Vec<Position>> = BTreeMap::new();
        for atom in &tgd.body.atoms {
            for (i, term) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    var_positions
                        .entry(v.name())
                        .or_default()
                        .push(Position::new(atom.predicate.clone(), i));
                }
            }
        }
        let dangerous: BTreeSet<&str> = var_positions
            .iter()
            .filter(|(_, positions)| positions.iter().all(|p| affected.contains(p)))
            .map(|(name, _)| *name)
            .collect();
        if dangerous.is_empty() {
            return true;
        }
        tgd.body.atoms.iter().any(|atom| {
            let atom_vars: BTreeSet<&str> = atom
                .terms
                .iter()
                .filter_map(|t| t.as_var().map(|v| v.name()))
                .collect();
            dangerous.iter().all(|v| atom_vars.contains(v))
        })
    })
}

/// Is the TGD set sticky?  (No marked variable occurs more than once in the
/// body of its TGD.)
pub fn is_sticky(tgds: &[Tgd]) -> bool {
    let marking = Marking::compute(tgds);
    tgds.iter().enumerate().all(|(idx, tgd)| {
        tgd.body
            .repeated_variables()
            .iter()
            .all(|v| !marking.is_marked(idx, v))
    })
}

/// Is the TGD set weakly sticky?  (Every variable occurring more than once in
/// a body is non-marked or occurs at least once at a finite-rank position.)
pub fn is_weakly_sticky(tgds: &[Tgd]) -> bool {
    is_weakly_sticky_with(
        tgds,
        &PositionGraph::from_tgds(tgds, schema_positions(tgds)),
    )
}

/// Weak-stickiness test reusing an already-built position graph.
pub fn is_weakly_sticky_with(tgds: &[Tgd], graph: &PositionGraph) -> bool {
    let marking = Marking::compute(tgds);
    let finite = graph.finite_rank_positions();
    tgds.iter().enumerate().all(|(idx, tgd)| {
        tgd.body.repeated_variables().iter().all(|v| {
            if !marking.is_marked(idx, v) {
                return true;
            }
            // Marked and repeated: must occur at some finite-rank position.
            tgd.body.atoms.iter().any(|atom| {
                atom.terms.iter().enumerate().any(|(i, term)| {
                    term.as_var() == Some(v)
                        && finite.contains(&Position::new(atom.predicate.clone(), i))
                })
            })
        })
    })
}

/// Is the TGD set weakly acyclic (terminating restricted chase)?
pub fn is_weakly_acyclic(tgds: &[Tgd]) -> bool {
    PositionGraph::from_tgds(tgds, schema_positions(tgds)).is_weakly_acyclic()
}

/// All schema positions mentioned by `tgds` (first-seen arity per
/// predicate) — shared with the lint pass so its position graph matches the
/// classifier's.
pub(crate) fn schema_positions(tgds: &[Tgd]) -> Vec<Position> {
    let mut arities: BTreeMap<String, usize> = BTreeMap::new();
    for tgd in tgds {
        for atom in tgd.body.atoms.iter().chain(tgd.head.iter()) {
            arities
                .entry(atom.predicate.clone())
                .or_insert(atom.arity());
        }
    }
    arities
        .into_iter()
        .flat_map(|(p, a)| (0..a).map(move |i| Position::new(p.clone(), i)))
        .collect()
}

/// Classify a whole program's TGDs.
pub fn classify(program: &Program) -> ClassReport {
    classify_tgds(&program.tgds)
}

/// Classify an explicit set of TGDs.
pub fn classify_tgds(tgds: &[Tgd]) -> ClassReport {
    let graph = PositionGraph::from_tgds(tgds, schema_positions(tgds));
    let linear = is_linear(tgds);
    let guarded = is_guarded(tgds);
    let weakly_guarded = is_weakly_guarded(tgds);
    let sticky = is_sticky(tgds);
    let weakly_sticky = is_weakly_sticky_with(tgds, &graph);
    let weakly_acyclic = graph.is_weakly_acyclic();
    let most_specific = if linear {
        DatalogClass::Linear
    } else if guarded {
        DatalogClass::Guarded
    } else if sticky {
        DatalogClass::Sticky
    } else if weakly_acyclic {
        DatalogClass::WeaklyAcyclic
    } else if weakly_guarded {
        DatalogClass::WeaklyGuarded
    } else if weakly_sticky {
        DatalogClass::WeaklySticky
    } else {
        DatalogClass::Unrestricted
    };
    ClassReport {
        linear,
        guarded,
        weakly_guarded,
        sticky,
        weakly_sticky,
        weakly_acyclic,
        most_specific,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn tgds_of(text: &str) -> Vec<Tgd> {
        parse_program(text).unwrap().tgds
    }

    #[test]
    fn hospital_dimensional_rules_are_weakly_sticky() {
        // Rules (7) and (8) of the paper.
        let tgds = tgds_of(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        );
        assert!(is_weakly_sticky(&tgds));
        assert!(is_weakly_acyclic(&tgds));
        assert!(!is_linear(&tgds));
        // Not guarded: rule (7) has no atom with {w, d, p, u}.
        assert!(!is_guarded(&tgds));
        // w is marked (dropped by the head of (7)) and repeated → not sticky.
        assert!(!is_sticky(&tgds));
        let report = classify_tgds(&tgds);
        assert!(report.weakly_sticky);
        assert_eq!(report.most_specific, DatalogClass::WeaklyAcyclic);
    }

    #[test]
    fn single_atom_rules_are_linear_and_guarded() {
        let tgds = tgds_of("PatientUnit(u, d, p) :- PatientWardUnit(u, w, d, p).\n");
        assert!(is_linear(&tgds));
        assert!(is_guarded(&tgds));
        assert!(is_sticky(&tgds));
        assert_eq!(classify_tgds(&tgds).most_specific, DatalogClass::Linear);
    }

    #[test]
    fn classic_sticky_example() {
        // All repeated body variables reach the head → nothing marked →
        // sticky even with a join.
        let tgds = tgds_of("T(x, y, z) :- R(x, y), S(y, z).\n");
        assert!(is_sticky(&tgds));
        assert!(is_weakly_sticky(&tgds));
    }

    #[test]
    fn classic_non_sticky_non_weakly_sticky_example() {
        // The standard counterexample: the join variable y is dropped by the
        // head, and the rule recursively creates nulls that can reach the
        // join positions, so y's positions have infinite rank.
        let tgds = tgds_of(
            "R(x, z) :- R(x, y), R(y, z).\n\
             R(y, z) :- R(x, y).\n",
        );
        assert!(!is_sticky(&tgds));
        assert!(!is_weakly_acyclic(&tgds));
        assert!(!is_weakly_sticky(&tgds));
        assert_eq!(
            classify_tgds(&tgds).most_specific,
            DatalogClass::Unrestricted
        );
    }

    #[test]
    fn weakly_sticky_but_not_sticky_nor_weakly_acyclic() {
        // A recursive existential rule makes P[1] infinite-rank, but the join
        // variable in the second rule also occurs at a finite-rank position
        // (Q[0]), so the set is weakly sticky while not sticky (the join
        // variable is marked) and not weakly acyclic (special-edge cycle).
        let tgds = tgds_of(
            "P(y, z) :- P(x, y).\n\
             A(x, w) :- P(y, x), Q(y, w).\n",
        );
        assert!(!is_weakly_acyclic(&tgds));
        assert!(!is_sticky(&tgds));
        assert!(!is_guarded(&tgds));
        assert!(is_weakly_sticky(&tgds));
        let report = classify_tgds(&tgds);
        assert!(report.weakly_sticky);
        assert!(!report.sticky && !report.weakly_acyclic && !report.guarded);
    }

    #[test]
    fn guarded_but_not_linear() {
        let tgds = tgds_of("H(x, z) :- G(x, y, z), P(x, y).\n");
        assert!(!is_linear(&tgds));
        assert!(is_guarded(&tgds));
        assert_eq!(classify_tgds(&tgds).most_specific, DatalogClass::Guarded);
    }

    #[test]
    fn weakly_guarded_accepts_unaffected_unguarded_joins() {
        // No existentials at all → no affected positions → trivially weakly
        // guarded, even though not guarded.
        let tgds = tgds_of("T(x, z) :- R(x, y), S(y, z).\n");
        assert!(!is_guarded(&tgds));
        assert!(is_weakly_guarded(&tgds));
    }

    #[test]
    fn weakly_guarded_detects_unguarded_affected_variables() {
        // Nulls can appear at R[1] and S[0] (propagated), and the join
        // variable y occurs only at affected positions in the third rule's
        // body without a guard atom containing it together with x... here y
        // alone is the dangerous variable and each atom contains y, so it IS
        // weakly guarded; extend the body so two dangerous variables never
        // co-occur.
        let tgds = tgds_of(
            "R(x, z) :- A(x).\n\
             S(z, x) :- A(x).\n\
             B(x) :- R(x, y), S(y2, x), C(y, y2).\n",
        );
        // y and y2: y occurs at R[1] (affected) and C[0] (not affected), so it
        // is not dangerous.  Make sure the helper at least runs and returns a
        // boolean; the detailed semantics are exercised in the next test.
        let _ = is_weakly_guarded(&tgds);
    }

    #[test]
    fn weakly_guarded_negative_case() {
        // Nulls propagate into R[0] and R[1] via the first two rules, so in
        // the third rule the variables y and z occur only at affected
        // positions; no single body atom contains both → not weakly guarded.
        let tgds = tgds_of(
            "R(w, w2) :- A(x).\n\
             B(x) :- R(y, x), R(x2, z), C(x, x2).\n",
        );
        assert!(!is_weakly_guarded(&tgds));
    }

    #[test]
    fn report_display_mentions_most_specific_class() {
        let tgds = tgds_of("PatientUnit(u, d, p) :- PatientWardUnit(u, w, d, p).\n");
        let report = classify_tgds(&tgds);
        let rendered = report.to_string();
        assert!(rendered.contains("most-specific=linear"));
    }

    #[test]
    fn empty_program_is_everything() {
        let report = classify_tgds(&[]);
        assert!(report.linear && report.guarded && report.sticky);
        assert!(report.weakly_sticky && report.weakly_acyclic && report.weakly_guarded);
        assert_eq!(report.most_specific, DatalogClass::Linear);
    }

    #[test]
    fn classify_program_entry_point() {
        let program =
            parse_program("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n")
                .unwrap();
        let report = classify(&program);
        assert!(report.weakly_sticky);
    }
}
