//! `ontodq-lint`: static diagnostics over Datalog± programs.
//!
//! The paper's tractability story is *syntactic* — multidimensional
//! ontologies compiled from rule forms (1)–(4)/(10) are weakly sticky, and
//! weakly-acyclic programs have a terminating restricted chase.  This module
//! turns the classifiers ([`mod@crate::analysis::classify`]), the position graph
//! ([`crate::graph::PositionGraph`]) and the separability check
//! ([`crate::analysis::separability`]) into a single linting pass producing
//! structured [`Diagnostic`]s, plus a [`TerminationCertificate`] the chase
//! engine consumes (`ontodq_chase::ChaseConfig`): certified programs turn a
//! tuple-budget truncation into a loud invariant error, uncertified programs
//! chase behind an explicit warning.
//!
//! Diagnostic codes (catalogued in `docs/analysis.md`):
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | L001 | error | head/equated variable not bound by a positive body atom |
//! | L002 | error | negated-atom or comparison variable unbound in positive body |
//! | L003 | error | malformed rule shape (empty head/body, negation in a TGD body) |
//! | L004 | error | predicate used with inconsistent arities |
//! | L005 | error | negation cycle — the program is not stratifiable |
//! | L101 | warn  | dead rule: a body predicate is fed by no EDB relation and no head |
//! | L102 | warn  | rule derives only predicates no quality query depends on |
//! | L103 | warn  | cartesian product: rule body has disconnected variable components |
//! | L104 | warn  | duplicate rule (shadowed by an identical earlier rule) |
//! | L105 | warn  | EGD is not separable from the TGDs |
//! | L106 | warn  | no termination certificate: chase may only stop on budgets |
//! | L201 | info  | class-lattice placement of the program |

use crate::analysis::classify::{classify_tgds, ClassReport, DatalogClass};
use crate::analysis::separability;
use crate::graph::{PositionGraph, PredicateGraph};
use crate::program::{Position, Program};
use crate::rule::Tgd;
use crate::term::Variable;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing to fix, something worth knowing.
    Info,
    /// Suspicious but runnable; the program's semantics may not be what the
    /// author intended, or a guarantee is missing.
    Warn,
    /// The program is rejected: running it would be unsound or impossible.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Which rule of the program a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRef {
    /// Rule kind: `tgd`, `egd`, `constraint` or `delete`.
    pub kind: &'static str,
    /// Index within the program's list of that kind.
    pub index: usize,
    /// The rule, rendered back to its concrete syntax.
    pub text: String,
}

impl fmt::Display for RuleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind, self.index)
    }
}

/// One structured finding of the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`L001`, …; see the module table).
    pub code: &'static str,
    /// Error / warn / info.
    pub severity: Severity,
    /// The rule the finding anchors to (`None` for program-level findings).
    pub rule: Option<RuleRef>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// The concrete witness (a variable, a position cycle, an arity set…)
    /// when one exists.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no rule anchor and no witness (builder root; chain
    /// [`Diagnostic::at`] / [`Diagnostic::witnessed`] to attach them).
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            rule: None,
            message: message.into(),
            witness: None,
        }
    }

    /// Anchor the diagnostic to a rule.
    pub fn at(mut self, kind: &'static str, index: usize, text: impl Into<String>) -> Self {
        self.rule = Some(RuleRef {
            kind,
            index,
            text: text.into(),
        });
        self
    }

    /// Attach a concrete witness.
    pub fn witnessed(mut self, witness: impl Into<String>) -> Self {
        self.witness = Some(witness.into());
        self
    }

    /// The machine-readable line format used by the server's `!check` verb
    /// and the `ontodq-lint` binary:
    /// `diag code=L001 severity=error rule=tgd#2 message="…" witness="…"`.
    pub fn line(&self) -> String {
        let mut out = format!("diag code={} severity={}", self.code, self.severity);
        if let Some(rule) = &self.rule {
            out.push_str(&format!(" rule={rule}"));
        }
        out.push_str(&format!(" message={:?}", self.message));
        if let Some(witness) = &self.witness {
            out.push_str(&format!(" witness={witness:?}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    /// The human-oriented form; [`Diagnostic::line`] is the machine format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(rule) = &self.rule {
            write!(f, " {rule}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(witness) = &self.witness {
            write!(f, " (witness: {witness})")?;
        }
        Ok(())
    }
}

/// The chase-termination verdict the classifier can certify.
///
/// `terminating` is `true` exactly when the TGD set is **weakly acyclic**
/// (Fagin et al.): the restricted chase then reaches a fixpoint on every
/// instance.  The other classes (linear, guarded, sticky, weakly sticky)
/// buy decidable query answering, not chase termination, so they do not
/// certify.  When the program is not weakly acyclic, `witness_cycle` holds a
/// position-graph cycle through a special edge — the concrete reason an
/// unbounded number of fresh nulls may be created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminationCertificate {
    /// Most specific class-lattice placement.
    pub class: DatalogClass,
    /// Full membership report.
    pub report: ClassReport,
    /// `true` when the restricted chase is guaranteed to terminate.
    pub terminating: bool,
    /// A cycle through a special edge (`from ⇒ … → from`) when not
    /// terminating; empty otherwise.
    pub witness_cycle: Vec<Position>,
}

impl TerminationCertificate {
    /// Classify `tgds` and extract a witness cycle when termination cannot
    /// be certified.
    pub fn of_tgds(tgds: &[Tgd]) -> Self {
        let report = classify_tgds(tgds);
        let witness_cycle = if report.weakly_acyclic {
            Vec::new()
        } else {
            let positions = crate::analysis::classify::schema_positions(tgds);
            PositionGraph::from_tgds(tgds, positions)
                .special_cycle()
                .unwrap_or_default()
        };
        Self {
            class: report.most_specific,
            terminating: report.weakly_acyclic,
            witness_cycle,
            report,
        }
    }

    /// Classify a whole program's TGDs.
    pub fn of_program(program: &Program) -> Self {
        Self::of_tgds(&program.tgds)
    }

    /// The witness cycle rendered as `R[1] -> S[0] -> R[1]` (empty string
    /// when terminating).
    pub fn rendered_cycle(&self) -> String {
        self.witness_cycle
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl fmt::Display for TerminationCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class={} certified={}",
            self.class,
            if self.terminating { "yes" } else { "no" }
        )
    }
}

/// The result of linting one program: every diagnostic plus the termination
/// certificate and the stratification outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, program order within each check, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// The chase-termination certificate of the program's TGDs.
    pub certificate: TerminationCertificate,
    /// Number of strata of the (currently negation-free) predicate
    /// dependency graph; `None` when the program is not stratifiable.
    pub strata: Option<usize>,
}

impl LintReport {
    /// Findings of severity [`Severity::Error`].
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.of_severity(Severity::Error)
    }

    /// Findings of severity [`Severity::Warn`].
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.of_severity(Severity::Warn)
    }

    fn of_severity(&self, severity: Severity) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .collect()
    }

    /// Number of error findings.
    pub fn error_count(&self) -> usize {
        self.errors().len()
    }

    /// Number of warning findings.
    pub fn warning_count(&self) -> usize {
        self.warnings().len()
    }

    /// `true` when the program has no error findings (warnings allowed).
    pub fn is_ok(&self) -> bool {
        self.error_count() == 0
    }

    /// One-line summary: `class=… certified=… errors=N warnings=M`.
    pub fn summary(&self) -> String {
        format!(
            "{} errors={} warnings={}",
            self.certificate,
            self.error_count(),
            self.warning_count()
        )
    }
}

/// Lint a standalone program (no instance, no quality goals): the dead-rule
/// and reachability lints that need that context are skipped.
pub fn lint(program: &Program) -> LintReport {
    lint_with(program, None, &[])
}

/// Lint a program with its deployment context: `edb` names the extensional
/// relations the instance actually provides (enables the dead-rule lint),
/// `goals` names the predicates queries are asked against — for a context,
/// its quality predicates and quality versions (enables the reachability
/// lint).
pub fn lint_with(
    program: &Program,
    edb: Option<&BTreeSet<String>>,
    goals: &[String],
) -> LintReport {
    let mut diagnostics = Vec::new();

    check_arities(program, &mut diagnostics);
    check_shapes(program, &mut diagnostics);
    check_safety(program, &mut diagnostics);
    let strata = check_stratification(program, &mut diagnostics);
    check_dead_rules(program, edb, &mut diagnostics);
    check_reachability(program, goals, &mut diagnostics);
    check_cartesian_products(program, &mut diagnostics);
    check_duplicates(program, &mut diagnostics);
    check_separability(program, &mut diagnostics);

    let certificate = TerminationCertificate::of_program(program);
    if !certificate.terminating {
        diagnostics.push(
            Diagnostic::new(
                "L106",
                Severity::Warn,
                format!(
                    "no termination certificate: the TGD set is {} (not weakly acyclic), \
                     so the chase may only stop on its round/tuple budgets",
                    certificate.class
                ),
            )
            .witnessed(format!(
                "special-edge cycle: {}",
                certificate.rendered_cycle()
            )),
        );
    }
    diagnostics.push(Diagnostic::new(
        "L201",
        Severity::Info,
        format!(
            "program classified as {}: {}",
            certificate.class, certificate.report
        ),
    ));

    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    LintReport {
        diagnostics,
        certificate,
        strata,
    }
}

/// L004: every use of a predicate (rules, facts, deletions) must agree on
/// its arity.
fn check_arities(program: &Program, out: &mut Vec<Diagnostic>) {
    let mut arities: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    let mut record = |predicate: &str, arity: usize| {
        arities
            .entry(predicate.to_string())
            .or_default()
            .insert(arity);
    };
    for tgd in &program.tgds {
        for atom in tgd
            .body
            .atoms
            .iter()
            .chain(tgd.body.negated.iter())
            .chain(tgd.head.iter())
        {
            record(&atom.predicate, atom.arity());
        }
    }
    for egd in &program.egds {
        for atom in egd.body.atoms.iter().chain(egd.body.negated.iter()) {
            record(&atom.predicate, atom.arity());
        }
    }
    for nc in &program.constraints {
        for atom in nc.body.atoms.iter().chain(nc.body.negated.iter()) {
            record(&atom.predicate, atom.arity());
        }
    }
    for fact in &program.facts {
        record(&fact.atom().predicate, fact.atom().arity());
    }
    for retraction in &program.retractions {
        record(&retraction.atom().predicate, retraction.atom().arity());
    }
    for delete in &program.deletions {
        record(&delete.head.predicate, delete.head.arity());
        for atom in delete.body.atoms.iter().chain(delete.body.negated.iter()) {
            record(&atom.predicate, atom.arity());
        }
    }
    for (predicate, seen) in arities {
        if seen.len() > 1 {
            out.push(
                Diagnostic::new(
                    "L004",
                    Severity::Error,
                    format!("predicate '{predicate}' is used with inconsistent arities"),
                )
                .witnessed(format!(
                    "arities {{{}}}",
                    seen.iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            );
        }
    }
}

/// L003: structural rule shapes the engine cannot run.
fn check_shapes(program: &Program, out: &mut Vec<Diagnostic>) {
    for (i, tgd) in program.tgds.iter().enumerate() {
        if tgd.head.is_empty() {
            out.push(
                Diagnostic::new("L003", Severity::Error, "TGD has an empty head").at(
                    "tgd",
                    i,
                    tgd.to_string(),
                ),
            );
        }
        if tgd.body.atoms.is_empty() {
            out.push(
                Diagnostic::new("L003", Severity::Error, "TGD has no positive body atoms").at(
                    "tgd",
                    i,
                    tgd.to_string(),
                ),
            );
        }
        if !tgd.body.negated.is_empty() {
            out.push(
                Diagnostic::new(
                    "L003",
                    Severity::Error,
                    "negated body atoms in TGDs are not supported by the chase yet",
                )
                .at("tgd", i, tgd.to_string()),
            );
        }
    }
    for (i, delete) in program.deletions.iter().enumerate() {
        if delete.body.atoms.is_empty() {
            out.push(
                Diagnostic::new(
                    "L003",
                    Severity::Error,
                    "conditional delete has no positive body atoms",
                )
                .at("delete", i, delete.to_string()),
            );
        }
    }
}

/// L001/L002: range restriction.  Every variable the rule *uses* — in its
/// head (unless purely existential), in an equated pair, in a negated atom
/// or in a comparison — must be bound by at least one positive body atom.
fn check_safety(program: &Program, out: &mut Vec<Diagnostic>) {
    for (i, tgd) in program.tgds.iter().enumerate() {
        let positive = positive_variables(&tgd.body.atoms);
        for var in tgd.head_variables() {
            // Head variables absent from the whole body are existential
            // (they become fresh labeled nulls); head variables present in
            // the body but only in a negated atom or comparison are unsafe.
            if !positive.contains(&var) && tgd.body_variables().contains(&var) {
                out.push(
                    Diagnostic::new(
                        "L001",
                        Severity::Error,
                        format!("head variable '{var}' is not bound by any positive body atom"),
                    )
                    .at("tgd", i, tgd.to_string())
                    .witnessed(var.to_string()),
                );
            }
        }
        check_body_safety(&tgd.body, &positive, "tgd", i, &tgd.to_string(), out);
    }
    for (i, egd) in program.egds.iter().enumerate() {
        let positive = positive_variables(&egd.body.atoms);
        for var in [&egd.left, &egd.right] {
            if !positive.contains(var) {
                out.push(
                    Diagnostic::new(
                        "L001",
                        Severity::Error,
                        format!("equated variable '{var}' is not bound by any positive body atom"),
                    )
                    .at("egd", i, egd.to_string())
                    .witnessed(var.to_string()),
                );
            }
        }
        check_body_safety(&egd.body, &positive, "egd", i, &egd.to_string(), out);
    }
    for (i, nc) in program.constraints.iter().enumerate() {
        let positive = positive_variables(&nc.body.atoms);
        check_body_safety(&nc.body, &positive, "constraint", i, &nc.to_string(), out);
    }
    for (i, delete) in program.deletions.iter().enumerate() {
        let positive = positive_variables(&delete.body.atoms);
        let wildcards = delete.wildcard_variables();
        for var in delete.head.variables() {
            if !wildcards.contains(&var) && !positive.contains(&var) {
                out.push(
                    Diagnostic::new(
                        "L001",
                        Severity::Error,
                        format!(
                            "deletion head variable '{var}' is neither a wildcard nor bound by a \
                             positive body atom"
                        ),
                    )
                    .at("delete", i, delete.to_string())
                    .witnessed(var.to_string()),
                );
            }
        }
        check_body_safety(
            &delete.body,
            &positive,
            "delete",
            i,
            &delete.to_string(),
            out,
        );
    }
}

/// Variables bound by the positive atoms of a body.
fn positive_variables(atoms: &[crate::atom::Atom]) -> BTreeSet<Variable> {
    atoms.iter().flat_map(|a| a.variables()).collect()
}

/// The shared negated-atom / comparison half of the safety check.
fn check_body_safety(
    body: &crate::atom::Conjunction,
    positive: &BTreeSet<Variable>,
    kind: &'static str,
    index: usize,
    text: &str,
    out: &mut Vec<Diagnostic>,
) {
    for atom in &body.negated {
        for var in atom.variables() {
            if !positive.contains(&var) {
                out.push(
                    Diagnostic::new(
                        "L002",
                        Severity::Error,
                        format!(
                            "variable '{var}' of negated atom {atom} is not bound by any \
                             positive body atom"
                        ),
                    )
                    .at(kind, index, text.to_string())
                    .witnessed(var.to_string()),
                );
            }
        }
    }
    for comparison in &body.comparisons {
        for var in comparison.variables() {
            if !positive.contains(&var) {
                out.push(
                    Diagnostic::new(
                        "L002",
                        Severity::Error,
                        format!(
                            "comparison variable '{var}' is not bound by any positive body atom"
                        ),
                    )
                    .at(kind, index, text.to_string())
                    .witnessed(var.to_string()),
                );
            }
        }
    }
}

/// L005 + the strata count.  Strata are computed over the predicate
/// dependency graph with positive edges (`stratum(head) ≥ stratum(body)`)
/// and negative edges (`stratum(head) > stratum(negated body)`); a program
/// is stratifiable iff no cycle passes through a negative edge.  TGD bodies
/// are negation-free today (L003 rejects them), so this pass is the
/// prerequisite shipped ahead of the negation language feature.
fn check_stratification(program: &Program, out: &mut Vec<Diagnostic>) -> Option<usize> {
    let mut predicates: BTreeSet<String> = BTreeSet::new();
    // (from, to, negative)
    let mut edges: Vec<(String, String, bool)> = Vec::new();
    for tgd in &program.tgds {
        for head in &tgd.head {
            predicates.insert(head.predicate.clone());
            for atom in &tgd.body.atoms {
                predicates.insert(atom.predicate.clone());
                edges.push((atom.predicate.clone(), head.predicate.clone(), false));
            }
            for atom in &tgd.body.negated {
                predicates.insert(atom.predicate.clone());
                edges.push((atom.predicate.clone(), head.predicate.clone(), true));
            }
        }
    }
    let mut stratum: BTreeMap<&str, usize> = predicates.iter().map(|p| (p.as_str(), 0)).collect();
    let bound = predicates.len().max(1);
    for _ in 0..=bound {
        let mut changed = false;
        for (from, to, negative) in &edges {
            let floor = stratum[from.as_str()] + usize::from(*negative);
            if stratum[to.as_str()] < floor {
                *stratum
                    .get_mut(to.as_str())
                    .expect("stratum key inserted above") = floor;
                changed = true;
            }
        }
        if !changed {
            let max = stratum.values().copied().max().unwrap_or(0);
            return Some(max + 1);
        }
    }
    // No fixpoint within |predicates| sweeps: some cycle raises a stratum
    // unboundedly, which only a negative edge can do.
    let cycle: Vec<&str> = stratum
        .iter()
        .filter(|(_, s)| **s > bound)
        .map(|(p, _)| *p)
        .collect();
    out.push(
        Diagnostic::new(
            "L005",
            Severity::Error,
            "the program is not stratifiable: a dependency cycle passes through negation",
        )
        .witnessed(cycle.join(", ")),
    );
    None
}

/// L101: a rule whose positive body mentions a predicate fed by no EDB
/// relation, no program fact and no rule head can never fire.
fn check_dead_rules(program: &Program, edb: Option<&BTreeSet<String>>, out: &mut Vec<Diagnostic>) {
    let Some(edb) = edb else {
        return; // Without instance knowledge every base predicate may be EDB.
    };
    let heads: BTreeSet<&str> = program
        .tgds
        .iter()
        .flat_map(|t| t.head.iter())
        .map(|a| a.predicate.as_str())
        .collect();
    let facts: BTreeSet<&str> = program
        .facts
        .iter()
        .map(|f| f.atom().predicate.as_str())
        .collect();
    for (i, tgd) in program.tgds.iter().enumerate() {
        for atom in &tgd.body.atoms {
            let p = atom.predicate.as_str();
            if !edb.contains(p) && !heads.contains(p) && !facts.contains(p) {
                out.push(
                    Diagnostic::new(
                        "L101",
                        Severity::Warn,
                        format!(
                            "dead rule: body predicate '{p}' is fed by no EDB relation, no fact \
                             and no rule head, so the rule can never fire"
                        ),
                    )
                    .at("tgd", i, tgd.to_string())
                    .witnessed(p.to_string()),
                );
            }
        }
    }
}

/// L102: with quality goals known, a rule every head predicate of which is
/// outside the goals' dependency cone contributes nothing to any answer.
fn check_reachability(program: &Program, goals: &[String], out: &mut Vec<Diagnostic>) {
    if goals.is_empty() {
        return;
    }
    let graph = PredicateGraph::build(program);
    let goal_refs: Vec<&str> = goals.iter().map(|g| g.as_str()).collect();
    let needed = graph.ancestors_of(&goal_refs);
    for (i, tgd) in program.tgds.iter().enumerate() {
        let heads: Vec<&str> = tgd.head.iter().map(|a| a.predicate.as_str()).collect();
        if heads.iter().all(|h| !needed.contains(*h)) {
            out.push(
                Diagnostic::new(
                    "L102",
                    Severity::Warn,
                    format!(
                        "unreachable rule: no quality query depends on {}",
                        heads.join(", ")
                    ),
                )
                .at("tgd", i, tgd.to_string())
                .witnessed(heads.join(", ")),
            );
        }
    }
}

/// L103: positive body atoms that split into several variable-connected
/// components multiply instead of joining.
fn check_cartesian_products(program: &Program, out: &mut Vec<Diagnostic>) {
    for (i, tgd) in program.tgds.iter().enumerate() {
        if let Some(witness) = cartesian_components(&tgd.body.atoms) {
            out.push(
                Diagnostic::new(
                    "L103",
                    Severity::Warn,
                    "rule body is a cartesian product: its atoms split into variable-disjoint \
                     components",
                )
                .at("tgd", i, tgd.to_string())
                .witnessed(witness),
            );
        }
    }
}

/// `Some(rendered components)` when `atoms` form more than one
/// variable-connected component.
fn cartesian_components(atoms: &[crate::atom::Atom]) -> Option<String> {
    if atoms.len() < 2 {
        return None;
    }
    // Union-find over atom indices, linked through shared variables.
    let mut parent: Vec<usize> = (0..atoms.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut owner: BTreeMap<Variable, usize> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        for var in atom.variables() {
            match owner.get(&var) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(var, i);
                }
            }
        }
    }
    let mut components: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        let root = find(&mut parent, i);
        components.entry(root).or_default().push(atom.to_string());
    }
    (components.len() > 1).then(|| {
        components
            .values()
            .map(|atoms| format!("{{{}}}", atoms.join(", ")))
            .collect::<Vec<_>>()
            .join(" x ")
    })
}

/// L104: a TGD textually identical (modulo label) to an earlier one.
fn check_duplicates(program: &Program, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, tgd) in program.tgds.iter().enumerate() {
        let mut unlabeled = tgd.clone();
        unlabeled.label = None;
        let rendered = unlabeled.to_string();
        match seen.get(&rendered) {
            Some(&first) => out.push(
                Diagnostic::new(
                    "L104",
                    Severity::Warn,
                    format!("duplicate rule: identical to tgd#{first}"),
                )
                .at("tgd", i, tgd.to_string())
                .witnessed(format!("tgd#{first}")),
            ),
            None => {
                seen.insert(rendered, i);
            }
        }
    }
}

/// L105: surface the EGD-separability verdicts of
/// [`crate::analysis::separability`] as diagnostics.
fn check_separability(program: &Program, out: &mut Vec<Diagnostic>) {
    let report = separability::check_program(program);
    for verdict in &report.egds {
        if !verdict.separable {
            let egd = &program.egds[verdict.egd_index];
            out.push(
                Diagnostic::new(
                    "L105",
                    Severity::Warn,
                    "EGD is not separable from the TGDs: it equates values at positions where \
                     labeled nulls may appear, so query answers may depend on EGD firing order",
                )
                .at("egd", verdict.egd_index, egd.to_string())
                .witnessed(
                    verdict
                        .offending_positions
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_hospital_rules_lint_clean() {
        let program = parse_program(
            "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
             Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n",
        )
        .unwrap();
        let report = lint(&program);
        assert!(report.is_ok(), "unexpected errors: {:?}", report.errors());
        assert_eq!(report.warning_count(), 0);
        assert!(report.certificate.terminating);
        assert_eq!(report.strata, Some(1));
        // The only diagnostic is the L201 class info.
        assert_eq!(codes(&report), vec!["L201"]);
    }

    #[test]
    fn comparison_only_head_variable_is_unsafe() {
        let program = parse_program("Q(x, y) :- P(x), y > 5.\n").unwrap();
        let report = lint(&program);
        assert!(!report.is_ok());
        let error = &report.errors()[0];
        assert_eq!(error.code, "L001");
        assert_eq!(error.witness.as_deref(), Some("y"));
        assert!(error.rule.as_ref().unwrap().kind == "tgd");
    }

    #[test]
    fn unbound_comparison_variable_is_unsafe() {
        let program = parse_program("Q(x) :- P(x), z > 5.\n").unwrap();
        let report = lint(&program);
        assert!(report.diagnostics.iter().any(|d| d.code == "L002"));
    }

    #[test]
    fn pure_existential_head_variables_are_fine() {
        let program = parse_program("Shifts(w, z) :- Ward(w).\n").unwrap();
        let report = lint(&program);
        assert!(report.is_ok());
    }

    #[test]
    fn arity_mismatch_is_flagged() {
        let program = parse_program("P(x) :- Q(x).\nR(x, y) :- Q(x, y).\n").unwrap();
        let report = lint(&program);
        assert!(report.diagnostics.iter().any(|d| d.code == "L004"
            && d.severity == Severity::Error
            && d.message.contains("'Q'")));
    }

    #[test]
    fn dead_rule_needs_edb_knowledge() {
        let program = parse_program("P(x) :- Ghost(x).\n").unwrap();
        // Without an EDB set the lint stays silent.
        assert!(lint(&program).is_ok());
        // With one that lacks 'Ghost' the rule is dead.
        let edb: BTreeSet<String> = ["Real".to_string()].into_iter().collect();
        let report = lint_with(&program, Some(&edb), &[]);
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L101")
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].witness.as_deref(), Some("Ghost"));
    }

    #[test]
    fn unreachable_rule_relative_to_goals() {
        let program = parse_program(
            "Useful(x) :- Base(x).\n\
             Orphan(x) :- Base(x).\n",
        )
        .unwrap();
        let report = lint_with(&program, None, &["Useful".to_string()]);
        let unreachable: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L102")
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].rule.as_ref().unwrap().index, 1);
    }

    #[test]
    fn cartesian_product_bodies_are_flagged() {
        let program = parse_program("Pair(x, y) :- Left(x), Right(y).\n").unwrap();
        let report = lint(&program);
        let cartesian: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L103")
            .collect();
        assert_eq!(cartesian.len(), 1);
        assert!(cartesian[0].witness.as_deref().unwrap().contains(" x "));
        // A connected body is not.
        let joined = parse_program("Pair(x, y) :- Left(x, y), Right(y).\n").unwrap();
        assert!(!lint(&joined).diagnostics.iter().any(|d| d.code == "L103"));
    }

    #[test]
    fn duplicate_rules_are_flagged() {
        let program = parse_program(
            "P(x) :- Q(x).\n\
             P(x) :- Q(x).\n",
        )
        .unwrap();
        let report = lint(&program);
        let dups: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L104")
            .collect();
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].rule.as_ref().unwrap().index, 1);
    }

    #[test]
    fn non_separable_egd_is_surfaced() {
        let program = parse_program(
            "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n\
             s = s2 :- Shifts(w, d, n, s), Shifts(w, d, n2, s2).\n",
        )
        .unwrap();
        let report = lint(&program);
        assert!(report.diagnostics.iter().any(|d| d.code == "L105"));
    }

    #[test]
    fn uncertified_program_gets_witness_cycle() {
        let program = parse_program("R(y, z) :- R(x, y).\n").unwrap();
        let report = lint(&program);
        assert!(!report.certificate.terminating);
        assert!(!report.certificate.witness_cycle.is_empty());
        let warn = report
            .diagnostics
            .iter()
            .find(|d| d.code == "L106")
            .expect("uncertified warning");
        assert!(warn.witness.as_deref().unwrap().contains("R[1]"));
        assert!(report.summary().contains("certified=no"));
    }

    #[test]
    fn certificate_of_weakly_acyclic_program_certifies() {
        let program = parse_program("T(x, z) :- S(x).\nU(z) :- T(x, z).\n").unwrap();
        let cert = TerminationCertificate::of_program(&program);
        assert!(cert.terminating);
        assert!(cert.witness_cycle.is_empty());
        assert_eq!(cert.rendered_cycle(), "");
    }

    #[test]
    fn diagnostic_line_format_is_machine_readable() {
        let program = parse_program("Q(x, y) :- P(x), y > 5.\n").unwrap();
        let report = lint(&program);
        let line = report.errors()[0].line();
        assert!(line.starts_with("diag code=L001 severity=error rule=tgd#0"));
        assert!(line.contains("message=\""));
        assert!(line.contains("witness=\"y\""));
    }

    #[test]
    fn errors_sort_before_warnings_and_info() {
        let program = parse_program(
            "Pair(x, y) :- Left(x), Right(y).\n\
             Q(a, b) :- P(a), b > 5.\n",
        )
        .unwrap();
        let report = lint(&program);
        let severities: Vec<Severity> = report.diagnostics.iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted);
    }

    #[test]
    fn negation_free_programs_collapse_to_one_stratum() {
        // Positive edges only require stratum(head) >= stratum(body), so a
        // negation-free chain stays in a single stratum.
        let program = parse_program(
            "B(x) :- A(x).\n\
             C(x) :- B(x).\n",
        )
        .unwrap();
        let report = lint(&program);
        assert_eq!(report.strata, Some(1));
    }
}
