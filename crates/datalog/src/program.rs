//! Datalog± programs: collections of TGDs, EGDs, negative constraints and
//! facts over a common schema.

use crate::atom::Atom;
use crate::rule::{ConditionalDelete, Egd, Fact, NegativeConstraint, Retraction, Rule, Tgd};
use crate::term::Term;
use ontodq_relational::{Database, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A position in the schema: a predicate name and a 0-based argument index.
///
/// Positions are the unit of the syntactic analyses (stickiness, weak
/// acyclicity, affectedness): `PatientWard[0]` is "the Ward argument of
/// PatientWard".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Position {
    /// Predicate name.
    pub predicate: String,
    /// Argument index (0-based).
    pub index: usize,
}

impl Position {
    /// Construct a position.
    pub fn new(predicate: impl Into<String>, index: usize) -> Self {
        Self {
            predicate: predicate.into(),
            index,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.predicate, self.index)
    }
}

/// A Datalog± program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Tuple-generating dependencies (the paper's dimensional rules).
    pub tgds: Vec<Tgd>,
    /// Equality-generating dependencies (dimensional constraints, form (2)).
    pub egds: Vec<Egd>,
    /// Negative constraints (forms (1) and (3)).
    pub constraints: Vec<NegativeConstraint>,
    /// Ground facts (extensional data expressed as rules).
    pub facts: Vec<Fact>,
    /// Ground retractions (`-P(ā).` — deletion workload, not ontology).
    pub retractions: Vec<Retraction>,
    /// Conditional deletes (`-P(x̄) :- body.`).
    pub deletions: Vec<ConditionalDelete>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add any rule.
    pub fn add_rule(&mut self, rule: Rule) {
        match rule {
            Rule::Tgd(r) => self.tgds.push(r),
            Rule::Egd(r) => self.egds.push(r),
            Rule::Constraint(r) => self.constraints.push(r),
            Rule::Fact(r) => self.facts.push(r),
            Rule::Retract(r) => self.retractions.push(r),
            Rule::Delete(r) => self.deletions.push(r),
        }
    }

    /// Add a TGD (builder style).
    pub fn with_tgd(mut self, tgd: Tgd) -> Self {
        self.tgds.push(tgd);
        self
    }

    /// Add an EGD (builder style).
    pub fn with_egd(mut self, egd: Egd) -> Self {
        self.egds.push(egd);
        self
    }

    /// Add a negative constraint (builder style).
    pub fn with_constraint(mut self, nc: NegativeConstraint) -> Self {
        self.constraints.push(nc);
        self
    }

    /// Add a fact (builder style).
    pub fn with_fact(mut self, fact: Fact) -> Self {
        self.facts.push(fact);
        self
    }

    /// Total number of rules of all kinds.
    pub fn rule_count(&self) -> usize {
        self.tgds.len()
            + self.egds.len()
            + self.constraints.len()
            + self.facts.len()
            + self.retractions.len()
            + self.deletions.len()
    }

    /// All rules, in kind order (TGDs, EGDs, constraints, facts,
    /// retractions, conditional deletes).
    pub fn rules(&self) -> Vec<Rule> {
        let mut out: Vec<Rule> = Vec::with_capacity(self.rule_count());
        out.extend(self.tgds.iter().cloned().map(Rule::Tgd));
        out.extend(self.egds.iter().cloned().map(Rule::Egd));
        out.extend(self.constraints.iter().cloned().map(Rule::Constraint));
        out.extend(self.facts.iter().cloned().map(Rule::Fact));
        out.extend(self.retractions.iter().cloned().map(Rule::Retract));
        out.extend(self.deletions.iter().cloned().map(Rule::Delete));
        out
    }

    /// Predicate names with their arities, as observed across all rules.
    ///
    /// When a predicate appears with inconsistent arities the first observed
    /// arity wins; [`Program::validate`] reports the inconsistency.
    pub fn predicates(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        let mut record = |atom: &Atom| {
            out.entry(atom.predicate.clone()).or_insert(atom.arity());
        };
        for tgd in &self.tgds {
            tgd.body.atoms.iter().for_each(&mut record);
            tgd.body.negated.iter().for_each(&mut record);
            tgd.head.iter().for_each(&mut record);
        }
        for egd in &self.egds {
            egd.body.atoms.iter().for_each(&mut record);
            egd.body.negated.iter().for_each(&mut record);
        }
        for nc in &self.constraints {
            nc.body.atoms.iter().for_each(&mut record);
            nc.body.negated.iter().for_each(&mut record);
        }
        for fact in &self.facts {
            record(fact.atom());
        }
        for retraction in &self.retractions {
            record(retraction.atom());
        }
        for delete in &self.deletions {
            record(&delete.head);
            delete.body.atoms.iter().for_each(&mut record);
            delete.body.negated.iter().for_each(&mut record);
        }
        out
    }

    /// All schema positions of all predicates.
    pub fn positions(&self) -> Vec<Position> {
        self.predicates()
            .iter()
            .flat_map(|(p, arity)| (0..*arity).map(|i| Position::new(p.clone(), i)))
            .collect()
    }

    /// Predicates that occur in some TGD head (the intensional predicates).
    pub fn idb_predicates(&self) -> BTreeSet<String> {
        self.tgds
            .iter()
            .flat_map(|t| t.head.iter().map(|a| a.predicate.clone()))
            .collect()
    }

    /// Predicates that occur only in bodies and facts (the extensional
    /// predicates).
    pub fn edb_predicates(&self) -> BTreeSet<String> {
        let idb = self.idb_predicates();
        self.predicates()
            .keys()
            .filter(|p| !idb.contains(*p))
            .cloned()
            .collect()
    }

    /// Structural validation: consistent arities, well-formed EGDs, TGD
    /// bodies without negation.  Returns a list of human-readable problems
    /// (empty when the program is well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Arity consistency.
        let mut arities: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
        let mut record = |atom: &Atom| {
            arities
                .entry(atom.predicate.clone())
                .or_default()
                .insert(atom.arity());
        };
        for tgd in &self.tgds {
            tgd.body.atoms.iter().for_each(&mut record);
            tgd.body.negated.iter().for_each(&mut record);
            tgd.head.iter().for_each(&mut record);
        }
        for egd in &self.egds {
            egd.body.atoms.iter().for_each(&mut record);
        }
        for nc in &self.constraints {
            nc.body.atoms.iter().for_each(&mut record);
            nc.body.negated.iter().for_each(&mut record);
        }
        for fact in &self.facts {
            record(fact.atom());
        }
        for retraction in &self.retractions {
            record(retraction.atom());
        }
        for delete in &self.deletions {
            record(&delete.head);
            delete.body.atoms.iter().for_each(&mut record);
            delete.body.negated.iter().for_each(&mut record);
        }
        for (pred, seen) in &arities {
            if seen.len() > 1 {
                problems.push(format!(
                    "predicate '{pred}' used with multiple arities: {seen:?}"
                ));
            }
        }
        // TGD shape.
        for (i, tgd) in self.tgds.iter().enumerate() {
            if !tgd.body.negated.is_empty() {
                problems.push(format!("TGD #{i} has negated body atoms"));
            }
            if tgd.head.is_empty() {
                problems.push(format!("TGD #{i} has an empty head"));
            }
            if tgd.body.atoms.is_empty() {
                problems.push(format!("TGD #{i} has no positive body atoms"));
            }
        }
        // EGD shape.
        for (i, egd) in self.egds.iter().enumerate() {
            if !egd.is_well_formed() {
                problems.push(format!(
                    "EGD #{i} equates variables that do not both occur in its body"
                ));
            }
        }
        // Conditional-delete shape: the body must be evaluable (at least one
        // positive atom); wildcard head variables are fine.
        for (i, delete) in self.deletions.iter().enumerate() {
            if delete.body.atoms.is_empty() {
                problems.push(format!(
                    "conditional delete #{i} has no positive body atoms"
                ));
            }
        }
        problems
    }

    /// Load the program's facts into a database (predicates become untyped
    /// relations).  Returns the number of tuples inserted.
    pub fn facts_into_database(&self, db: &mut Database) -> usize {
        let mut added = 0;
        for fact in &self.facts {
            let atom = fact.atom();
            let values: Vec<_> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => *v,
                    Term::Var(_) => unreachable!("facts are ground"),
                })
                .collect();
            if db
                .relation_or_create(&atom.predicate, atom.arity())
                .insert_unchecked(Tuple::new(values))
            {
                added += 1;
            }
        }
        added
    }

    /// Merge another program's rules into this one.
    pub fn extend(&mut self, other: Program) {
        self.tgds.extend(other.tgds);
        self.egds.extend(other.egds);
        self.constraints.extend(other.constraints);
        self.facts.extend(other.facts);
        self.retractions.extend(other.retractions);
        self.deletions.extend(other.deletions);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in self.rules() {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Conjunction};
    use crate::rule::tgd;
    use crate::term::Term;
    use crate::term::Variable;

    fn sample_program() -> Program {
        Program::new()
            .with_tgd(tgd(
                Atom::with_vars("PatientUnit", &["u", "d", "p"]),
                vec![
                    Atom::with_vars("PatientWard", &["w", "d", "p"]),
                    Atom::with_vars("UnitWard", &["u", "w"]),
                ],
            ))
            .with_egd(Egd::new(
                Conjunction::positive(vec![
                    Atom::with_vars("Thermometer", &["w", "t", "n"]),
                    Atom::with_vars("Thermometer", &["w2", "t2", "n2"]),
                    Atom::with_vars("UnitWard", &["u", "w"]),
                    Atom::with_vars("UnitWard", &["u", "w2"]),
                ]),
                Variable::new("t"),
                Variable::new("t2"),
            ))
            .with_constraint(NegativeConstraint::new(
                Conjunction::positive(vec![Atom::with_vars("PatientUnit", &["u", "d", "p"])])
                    .and_not(Atom::with_vars("Unit", &["u"])),
            ))
            .with_fact(Fact::new(Atom::new("Unit", vec![Term::constant("Standard")])).unwrap())
    }

    #[test]
    fn rule_bookkeeping() {
        let p = sample_program();
        assert_eq!(p.rule_count(), 4);
        assert_eq!(p.rules().len(), 4);
        assert_eq!(p.tgds.len(), 1);
        assert_eq!(p.egds.len(), 1);
        assert_eq!(p.constraints.len(), 1);
        assert_eq!(p.facts.len(), 1);
    }

    #[test]
    fn predicates_and_positions() {
        let p = sample_program();
        let preds = p.predicates();
        assert_eq!(preds.get("PatientWard"), Some(&3));
        assert_eq!(preds.get("UnitWard"), Some(&2));
        assert_eq!(preds.get("Unit"), Some(&1));
        let positions = p.positions();
        assert!(positions.contains(&Position::new("PatientWard", 2)));
        assert_eq!(
            positions
                .iter()
                .filter(|p| p.predicate == "Thermometer")
                .count(),
            3
        );
    }

    #[test]
    fn idb_edb_split() {
        let p = sample_program();
        let idb = p.idb_predicates();
        assert!(idb.contains("PatientUnit"));
        assert!(!idb.contains("PatientWard"));
        let edb = p.edb_predicates();
        assert!(edb.contains("PatientWard"));
        assert!(edb.contains("UnitWard"));
        assert!(!edb.contains("PatientUnit"));
    }

    #[test]
    fn validation_accepts_sample() {
        assert!(sample_program().validate().is_empty());
    }

    #[test]
    fn validation_flags_arity_conflicts() {
        let mut p = sample_program();
        p.facts.push(
            Fact::new(Atom::new(
                "Unit",
                vec![Term::constant("Standard"), Term::constant("extra")],
            ))
            .unwrap(),
        );
        let problems = p.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("Unit"));
    }

    #[test]
    fn validation_flags_bad_tgds_and_egds() {
        let mut p = Program::new();
        p.tgds.push(Tgd::with_heads(
            Conjunction::positive(vec![Atom::with_vars("P", &["x"])])
                .and_not(Atom::with_vars("N", &["x"])),
            vec![],
        ));
        p.egds.push(Egd::new(
            Conjunction::positive(vec![Atom::with_vars("P", &["x"])]),
            Variable::new("x"),
            Variable::new("zzz"),
        ));
        let problems = p.validate();
        assert_eq!(problems.len(), 3);
    }

    #[test]
    fn facts_load_into_database() {
        let p = sample_program();
        let mut db = Database::new();
        let added = p.facts_into_database(&mut db);
        assert_eq!(added, 1);
        assert!(db.contains("Unit", &Tuple::from_iter(["Standard"])));
        // Loading again adds nothing (set semantics).
        let mut db2 = db.clone();
        assert_eq!(p.facts_into_database(&mut db2), 0);
    }

    #[test]
    fn extend_merges_programs() {
        let mut a = sample_program();
        let b = Program::new().with_tgd(tgd(
            Atom::with_vars("Q", &["x"]),
            vec![Atom::with_vars("P", &["x"])],
        ));
        a.extend(b);
        assert_eq!(a.tgds.len(), 2);
    }

    #[test]
    fn display_renders_every_rule() {
        let rendered = sample_program().to_string();
        assert!(rendered.contains("PatientUnit(u, d, p) :- "));
        assert!(rendered.contains("t = t2 :- "));
        assert!(rendered.contains("! :- "));
        assert!(rendered.contains("Unit(Standard)."));
    }

    #[test]
    fn position_display() {
        assert_eq!(
            Position::new("PatientWard", 0).to_string(),
            "PatientWard[0]"
        );
    }
}
