//! # ontodq-workload
//!
//! Synthetic workload generation for the `ontodq` benchmark harness.
//!
//! The paper evaluates its proposal on a running example only; to validate
//! its complexity claims empirically this crate provides:
//!
//! * [`dimgen`] — synthetic dimensions with configurable depth and fan-out
//!   (for the Fig. 1 navigation sweeps),
//! * [`scaled_hospital`] — a size-parameterized version of the hospital
//!   scenario (dimensions, categorical data, a `Measurements` instance under
//!   assessment, and the Example 7 quality context), used by the
//!   data-complexity and end-to-end assessment benchmarks,
//! * [`querygen`] — selectivity-sweeping query workloads over the scaled
//!   hospital (point lookups like the doctor's query vs. broad scans), for
//!   the demand-driven vs. full-materialization comparison,
//! * [`corrections`] — deterministic insert/retract interleavings over the
//!   scaled hospital, for the delete-and-rederive (`retract_bench`)
//!   comparison and the retraction equivalence suite,
//! * [`skewed`] — Zipf-skewed cyclic triangle workloads, the adversarial
//!   case for atom-at-a-time join plans and the benchmark target of the
//!   worst-case-optimal join path.
//!
//! All generators take explicit seeds so benchmark workloads are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrections;
pub mod dimgen;
pub mod querygen;
pub mod scaled_hospital;
pub mod skewed;

pub use corrections::{generate_corrections, CorrectionOp, CorrectionScale, CorrectionWorkload};
pub use dimgen::{generate_linear_dimension, DimGenError, DimensionParams};
pub use querygen::{doctors_style_query, generate_queries, QuerySpec, Selectivity};
pub use scaled_hospital::{generate, HospitalScale, ScaledHospital};
pub use skewed::{generate_skewed, skewed_program, SkewedScale, SkewedWorkload};
