//! Skewed multi-way join workloads.
//!
//! The scaled hospital exercises the chase on the paper's star-shaped
//! rules, whose bodies join on one or two shared variables and behave well
//! under atom-at-a-time hash plans.  The worst cases for such plans are
//! **cyclic** bodies over **skewed** data: in the triangle rule
//! `Tri(x, y, z) :- R(x, y), S(y, z), T(z, x)` a handful of hub nodes with
//! Zipf-distributed degrees make every pairwise intermediate (`R ⋈ S`)
//! quadratic in the hub degree while the triangle count stays small.  This
//! module generates exactly that shape, as the adversarial counterpart the
//! worst-case-optimal join path is measured against:
//!
//! * three binary edge relations `R`, `S`, `T` over a shared node domain,
//!   endpoints drawn from a Zipf(`exponent`) distribution (exponent 0 is
//!   uniform — the control case where hash plans are fine);
//! * a program with the cyclic triangle rule (picked up by the
//!   worst-case-optimal planner) and an acyclic wedge rule (kept on the
//!   hash path), so both engines do real work on the same instance.
//!
//! Generators take explicit seeds; identical scales produce identical
//! instances.

use ontodq_datalog::{parse_program, Program};
use ontodq_relational::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size and skew parameters of a generated triangle workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedScale {
    /// Number of nodes in the shared domain.
    pub nodes: usize,
    /// Number of edges sampled into each of `R`, `S` and `T` (duplicates
    /// collapse, so the stored relations may be slightly smaller).
    pub edges: usize,
    /// Zipf exponent of the endpoint distribution; `0.0` is uniform,
    /// values around `1.0` give realistic heavy hubs.
    pub exponent: f64,
    /// RNG seed, so workloads are reproducible across runs.
    pub seed: u64,
}

impl SkewedScale {
    /// A small skewed default used by the equivalence tests.
    pub fn small() -> Self {
        Self {
            nodes: 24,
            edges: 160,
            exponent: 1.1,
            seed: 11,
        }
    }

    /// A scale with roughly `edges` tuples per relation and a node domain
    /// sized so hubs stay heavy — used by the join benchmark sweeps.
    pub fn with_edges(edges: usize) -> Self {
        Self {
            nodes: (edges / 6).max(8),
            edges,
            exponent: 1.1,
            seed: 11,
        }
    }

    /// The same scale with uniform (unskewed) endpoints.
    pub fn uniform(mut self) -> Self {
        self.exponent = 0.0;
        self
    }
}

/// A generated skewed-join workload: the edge instance and its program.
#[derive(Debug, Clone)]
pub struct SkewedWorkload {
    /// The size parameters used.
    pub scale: SkewedScale,
    /// The edge relations `R`, `S`, `T`.
    pub database: Database,
    /// The triangle + wedge program over the edges.
    pub program: Program,
}

/// Inverse-CDF sampler for the Zipf distribution over `0..n`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for weight in &mut cdf {
            *weight /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        // The rand shim only samples integer ranges; map a u64 draw onto
        // the unit interval.
        let u = rng.gen_range(0..u64::MAX) as f64 / u64::MAX as f64;
        self.cdf.partition_point(|&w| w < u).min(self.cdf.len() - 1)
    }
}

/// The program joined over the generated edges: the cyclic triangle rule
/// (the worst-case-optimal planner's target) and an acyclic wedge rule
/// (stays on the hash path under the default planner).
pub fn skewed_program() -> Program {
    parse_program(
        "Tri(x, y, z) :- R(x, y), S(y, z), T(z, x).\n\
         Wedge(x, z) :- R(x, y), S(y, z).\n",
    )
    .expect("the skewed-join program is well-formed")
}

/// Generate a skewed triangle workload.
pub fn generate_skewed(scale: &SkewedScale) -> SkewedWorkload {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let zipf = Zipf::new(scale.nodes, scale.exponent);
    let mut database = Database::new();
    for relation in ["R", "S", "T"] {
        for _ in 0..scale.edges {
            let a = zipf.sample(&mut rng);
            let b = zipf.sample(&mut rng);
            database
                .insert_values(relation, [format!("n{a}"), format!("n{b}")])
                .expect("edge relations have a fixed binary schema");
        }
    }
    SkewedWorkload {
        scale: scale.clone(),
        database,
        program: skewed_program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_chase::{chase, TerminationReason};

    #[test]
    fn generation_is_reproducible() {
        let scale = SkewedScale::small();
        let a = generate_skewed(&scale);
        let b = generate_skewed(&scale);
        for name in ["R", "S", "T"] {
            assert_eq!(
                a.database.relation(name).unwrap().tuples(),
                b.database.relation(name).unwrap().tuples(),
            );
        }
    }

    #[test]
    fn different_seeds_change_the_edges() {
        let scale = SkewedScale::small();
        let a = generate_skewed(&scale);
        let b = generate_skewed(&SkewedScale { seed: 99, ..scale });
        assert_ne!(
            a.database.relation("R").unwrap().tuples(),
            b.database.relation("R").unwrap().tuples(),
        );
    }

    #[test]
    fn zipf_endpoints_are_skewed_and_uniform_is_not() {
        // Large enough that duplicate-collapse on stored edges does not
        // flatten the hub's distinct out-degree.
        let scale = SkewedScale {
            nodes: 100,
            edges: 600,
            exponent: 1.2,
            seed: 11,
        };
        let skewed = generate_skewed(&scale);
        let uniform = generate_skewed(&scale.clone().uniform());
        let max_degree = |w: &SkewedWorkload| {
            let r = w.database.relation("R").unwrap();
            let mut counts = std::collections::HashMap::new();
            for t in r.iter() {
                *counts.entry(t.values()[0]).or_insert(0usize) += 1;
            }
            counts.into_values().max().unwrap_or(0)
        };
        // The hottest hub under Zipf(1.1) is far hotter than under uniform.
        assert!(max_degree(&skewed) > 2 * max_degree(&uniform));
    }

    #[test]
    fn triangle_program_chases_to_fixpoint() {
        let workload = generate_skewed(&SkewedScale::small());
        let result = chase(&workload.program, &workload.database);
        assert_eq!(result.termination, TerminationReason::Fixpoint);
        // Hubs guarantee at least one triangle at this density.
        assert!(!result.database.relation("Tri").unwrap().is_empty());
        assert!(!result.database.relation("Wedge").unwrap().is_empty());
    }
}
