//! Correction workloads: deterministic insert/retract interleavings.
//!
//! The paper's assessment workflow is dominated by *corrections* — a
//! quality version changes when bad source facts are withdrawn, not only
//! when new readings arrive.  This module generates reproducible streams of
//! insert and retract batches over the scaled hospital's `Measurements`
//! relation, for the delete-and-rederive benchmarks (`retract_bench`) and
//! the retraction equivalence suite.
//!
//! Invariants the generator maintains:
//!
//! * every retract batch targets facts that are **live** at that point of
//!   the stream (part of the base instance or inserted earlier and not yet
//!   retracted), so each retraction exercises the cascade path rather than
//!   degenerating to a no-op;
//! * generated facts are distinct — an insert never re-adds a live fact —
//!   so applying the stream to a set-semantics database is unambiguous;
//! * the whole stream is a pure function of [`CorrectionScale`] (explicit
//!   seed), so benchmark runs and test failures reproduce exactly.

use crate::scaled_hospital::{generate, HospitalScale, ScaledHospital};
use ontodq_relational::{Database, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One step of a correction workload: one batch to apply.
#[derive(Debug, Clone, PartialEq)]
pub enum CorrectionOp {
    /// Insert these facts as one batch (incremental re-chase).
    Insert(Vec<(String, Tuple)>),
    /// Retract these facts as one delete-and-rederive batch.
    Retract(Vec<(String, Tuple)>),
}

/// Size and shape parameters of a correction workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionScale {
    /// The underlying scaled hospital.
    pub hospital: HospitalScale,
    /// Number of interleaved batches in the stream.
    pub batches: usize,
    /// Facts per batch.
    pub batch_size: usize,
    /// Percentage (0–100) of batches that are retractions.
    pub retract_percent: u32,
    /// RNG seed for the interleaving (independent of the hospital's seed).
    pub seed: u64,
}

impl CorrectionScale {
    /// A small default: 12 batches of 4 facts, 50% retractions.
    pub fn small() -> Self {
        Self {
            hospital: HospitalScale::small(),
            batches: 12,
            batch_size: 4,
            retract_percent: 50,
            seed: 11,
        }
    }
}

/// A generated correction workload: a base hospital plus an ordered stream
/// of insert/retract batches over its `Measurements` relation.
#[derive(Debug, Clone)]
pub struct CorrectionWorkload {
    /// The parameters used.
    pub scale: CorrectionScale,
    /// The base scaled hospital (ontology, context shape, initial
    /// instance).
    pub base: ScaledHospital,
    /// The correction stream, in application order.
    pub ops: Vec<CorrectionOp>,
}

impl CorrectionWorkload {
    /// The extensional instance that survives applying every op in order:
    /// the base `Measurements` plus all inserted, minus all retracted
    /// facts.  A from-scratch chase of this instance is the reference
    /// answer the delete-and-rederive path must reproduce.
    pub fn surviving_instance(&self) -> Database {
        let mut instance = self.base.instance.clone();
        for op in &self.ops {
            match op {
                CorrectionOp::Insert(facts) => {
                    for (relation, tuple) in facts {
                        let _ = instance.insert(relation, tuple.clone());
                    }
                }
                CorrectionOp::Retract(facts) => {
                    for (relation, tuple) in facts {
                        instance.delete(relation, tuple);
                    }
                }
            }
        }
        instance
    }

    /// Number of retract batches in the stream.
    pub fn retract_batches(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, CorrectionOp::Retract(_)))
            .count()
    }
}

fn fresh_measurement(rng: &mut StdRng, scale: &HospitalScale, serial: usize) -> Tuple {
    let day = rng.gen_range(0..scale.days.max(1));
    // Off-grid minutes, so generated readings never collide with the base
    // instance (whose times sit on the 9/12/15/18 o'clock grid).
    let minute = 10 * 60 + (serial % 120) as i64;
    let patient = rng.gen_range(0..scale.patients.max(1));
    let temperature = 35.0 + rng.gen_range(0..60) as f64 / 10.0;
    Tuple::new(vec![
        Value::time((day as i64) * 24 * 60 + minute),
        Value::str(format!("Patient_{patient}")),
        Value::double(temperature),
    ])
}

/// Generate a correction workload.
pub fn generate_corrections(scale: &CorrectionScale) -> CorrectionWorkload {
    let base = generate(&scale.hospital);
    let mut rng = StdRng::seed_from_u64(scale.seed);

    // The live pool: facts a retract batch may legally target.
    let mut pool: Vec<Tuple> = base
        .instance
        .relation("Measurements")
        .map(|r| r.iter().collect())
        .unwrap_or_default();
    let mut live: HashSet<Tuple> = pool.iter().cloned().collect();

    let mut serial = 0usize;
    let mut ops = Vec::with_capacity(scale.batches);
    for _ in 0..scale.batches {
        let retract = rng.gen_range(0..100) < scale.retract_percent && !pool.is_empty();
        if retract {
            let count = scale.batch_size.min(pool.len());
            let mut facts = Vec::with_capacity(count);
            for _ in 0..count {
                let index = rng.gen_range(0..pool.len());
                let tuple = pool.swap_remove(index);
                live.remove(&tuple);
                facts.push(("Measurements".to_string(), tuple));
            }
            ops.push(CorrectionOp::Retract(facts));
        } else {
            let mut facts = Vec::with_capacity(scale.batch_size);
            while facts.len() < scale.batch_size {
                let tuple = fresh_measurement(&mut rng, &scale.hospital, serial);
                serial += 1;
                if live.insert(tuple.clone()) {
                    pool.push(tuple.clone());
                    facts.push(("Measurements".to_string(), tuple));
                }
            }
            ops.push(CorrectionOp::Insert(facts));
        }
    }

    CorrectionWorkload {
        scale: scale.clone(),
        base,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_streams_are_reproducible() {
        let scale = CorrectionScale::small();
        let a = generate_corrections(&scale);
        let b = generate_corrections(&scale);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.ops.len(), scale.batches);
    }

    #[test]
    fn streams_mix_inserts_and_retractions() {
        let workload = generate_corrections(&CorrectionScale::small());
        let retracts = workload.retract_batches();
        assert!(retracts > 0, "no retraction batches generated");
        assert!(retracts < workload.ops.len(), "no insert batches generated");
    }

    /// Every retract batch targets a fact that is live at that point of the
    /// stream — replaying onto a database must delete successfully every
    /// time.
    #[test]
    fn retractions_always_target_live_facts() {
        let workload = generate_corrections(&CorrectionScale::small());
        let mut instance = workload.base.instance.clone();
        for op in &workload.ops {
            match op {
                CorrectionOp::Insert(facts) => {
                    for (relation, tuple) in facts {
                        assert!(
                            instance.insert(relation, tuple.clone()).unwrap(),
                            "insert of a duplicate fact"
                        );
                    }
                }
                CorrectionOp::Retract(facts) => {
                    for (relation, tuple) in facts {
                        assert!(instance.delete(relation, tuple), "retract of a dead fact");
                    }
                }
            }
        }
        let surviving = workload.surviving_instance();
        assert_eq!(
            surviving.relation("Measurements").unwrap().len(),
            instance.relation("Measurements").unwrap().len()
        );
    }

    #[test]
    fn different_seeds_change_the_interleaving() {
        let mut scale = CorrectionScale::small();
        let a = generate_corrections(&scale);
        scale.seed = 99;
        let b = generate_corrections(&scale);
        assert_ne!(a.ops, b.ops);
    }
}
