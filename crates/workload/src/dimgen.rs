//! Synthetic dimension generation.
//!
//! The paper's evaluation is a running example; to validate its complexity
//! claims (PTIME data complexity, the cost of upward vs. downward
//! navigation) we need dimensions whose depth, fan-out and member counts can
//! be swept.  [`generate_linear_dimension`] builds a chain-shaped dimension
//! (like `Hospital` and `Time` in Fig. 1) with a configurable branching
//! factor per level.
//!
//! Member counts grow as `fanout^(depth-1)`, which overflows fast: a sweep
//! over depth 40 at fan-out 3 is already past `u64`.  All counting is
//! checked `u64` math — [`DimensionParams::members_at`] and
//! [`DimensionParams::total_members`] return a [`DimGenError`] instead of
//! silently wrapping (or panicking in debug builds) on extreme parameters.

use ontodq_mdm::{DimensionInstance, DimensionSchema};
use ontodq_relational::Value;
use std::fmt;

/// Why a synthetic-dimension computation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimGenError {
    /// `fanout^(depth-1-level)` (or the member-count sum) exceeds `u64`.
    Overflow {
        /// Dimension name.
        name: String,
        /// The requested fan-out.
        fanout: usize,
        /// The requested depth.
        depth: usize,
        /// The level whose member count overflowed (`None`: the total).
        level: Option<usize>,
    },
    /// The requested level does not exist (levels run `0..depth`).
    LevelOutOfRange {
        /// Dimension name.
        name: String,
        /// The offending level.
        level: usize,
        /// The dimension's depth.
        depth: usize,
    },
}

impl fmt::Display for DimGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimGenError::Overflow {
                name,
                fanout,
                depth,
                level,
            } => match level {
                Some(level) => write!(
                    f,
                    "dimension '{name}': member count fanout^(depth-1-level) = \
                     {fanout}^{} at level {level} overflows u64 (depth {depth})",
                    depth - 1 - level
                ),
                None => write!(
                    f,
                    "dimension '{name}': total member count overflows u64 \
                     (fanout {fanout}, depth {depth})"
                ),
            },
            DimGenError::LevelOutOfRange { name, level, depth } => write!(
                f,
                "dimension '{name}': level {level} out of range (levels run 0..{depth})"
            ),
        }
    }
}

impl std::error::Error for DimGenError {}

/// Parameters of a synthetic linear dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionParams {
    /// Dimension name; also used as the member-name prefix.
    pub name: String,
    /// Number of category levels, bottom to top (≥ 1).
    pub depth: usize,
    /// Fan-out: each member of level `i+1` has this many children at level
    /// `i`.  The top level has exactly one member.
    pub fanout: usize,
}

impl DimensionParams {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, depth: usize, fanout: usize) -> Self {
        Self {
            name: name.into(),
            depth: depth.max(1),
            fanout: fanout.max(1),
        }
    }

    /// The category name of level `level` (0 = bottom).
    pub fn category(&self, level: usize) -> String {
        format!("{}L{}", self.name, level)
    }

    /// The number of members at `level` (the top level has one member), as
    /// checked `u64` math.
    ///
    /// # Errors
    /// [`DimGenError::LevelOutOfRange`] for `level >= depth`, and
    /// [`DimGenError::Overflow`] when `fanout^(depth-1-level)` exceeds
    /// `u64` — deep/wide sweeps must fail loudly, not wrap.
    pub fn members_at(&self, level: usize) -> Result<u64, DimGenError> {
        if level >= self.depth {
            return Err(DimGenError::LevelOutOfRange {
                name: self.name.clone(),
                level,
                depth: self.depth,
            });
        }
        let overflow = || DimGenError::Overflow {
            name: self.name.clone(),
            fanout: self.fanout,
            depth: self.depth,
            level: Some(level),
        };
        let exponent = u32::try_from(self.depth - 1 - level).map_err(|_| overflow())?;
        (self.fanout as u64)
            .checked_pow(exponent)
            .ok_or_else(overflow)
    }

    /// Total members across all levels, as checked `u64` math.
    ///
    /// # Errors
    /// [`DimGenError::Overflow`] when any level's count — or the sum — does
    /// not fit in `u64`.
    pub fn total_members(&self) -> Result<u64, DimGenError> {
        let mut total: u64 = 0;
        for level in 0..self.depth {
            total = total.checked_add(self.members_at(level)?).ok_or_else(|| {
                DimGenError::Overflow {
                    name: self.name.clone(),
                    fanout: self.fanout,
                    depth: self.depth,
                    level: None,
                }
            })?;
        }
        Ok(total)
    }

    /// The member name of index `index` at `level`.
    pub fn member(&self, level: usize, index: u64) -> Value {
        Value::str(format!("{}_{}_{}", self.name, level, index))
    }
}

/// Generate a linear (chain) dimension instance from parameters.
///
/// Level `depth-1` is the single-member top; each member of level `i+1` has
/// `fanout` children at level `i`, numbered consecutively, so the instance is
/// strict and homogeneous by construction.
///
/// # Errors
/// [`DimGenError::Overflow`] when the parameters describe more members than
/// `u64` can count (a generation that could never finish anyway).
pub fn generate_linear_dimension(
    params: &DimensionParams,
) -> Result<DimensionInstance, DimGenError> {
    // Validate the whole sweep up front: the failure must be immediate, not
    // discovered after generating the (astronomically many) members of the
    // levels above the one that overflows.
    params.total_members()?;
    let categories: Vec<String> = (0..params.depth).map(|l| params.category(l)).collect();
    let schema = DimensionSchema::chain(params.name.clone(), categories.clone());
    let mut instance = DimensionInstance::new(schema);
    // Top level member(s).
    for index in 0..params.members_at(params.depth - 1)? {
        instance
            .add_member(
                &categories[params.depth - 1],
                params.member(params.depth - 1, index),
            )
            .expect("top category exists");
    }
    // Children level by level, top-down.
    for level in (0..params.depth - 1).rev() {
        let child_category = &categories[level];
        let parent_category = &categories[level + 1];
        for child_index in 0..params.members_at(level)? {
            let parent_index = child_index / params.fanout as u64;
            instance
                .add_rollup(
                    child_category,
                    params.member(level, child_index),
                    parent_category,
                    params.member(level + 1, parent_index),
                )
                .expect("adjacent categories");
        }
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_counts_follow_fanout() {
        let params = DimensionParams::new("Geo", 4, 3);
        assert_eq!(params.members_at(3), Ok(1));
        assert_eq!(params.members_at(2), Ok(3));
        assert_eq!(params.members_at(1), Ok(9));
        assert_eq!(params.members_at(0), Ok(27));
        assert_eq!(params.total_members(), Ok(1 + 3 + 9 + 27));
    }

    #[test]
    fn generated_dimension_is_valid_strict_homogeneous() {
        let params = DimensionParams::new("Geo", 4, 3);
        let dim = generate_linear_dimension(&params).unwrap();
        assert!(dim.validate().is_ok());
        assert!(dim.strictness_violations().is_empty());
        assert!(dim.homogeneity_violations().is_empty());
        assert_eq!(dim.member_count() as u64, params.total_members().unwrap());
    }

    #[test]
    fn rollup_reaches_the_single_top_member() {
        let params = DimensionParams::new("Geo", 3, 4);
        let dim = generate_linear_dimension(&params).unwrap();
        let bottom = params.category(0);
        let top = params.category(2);
        for index in 0..params.members_at(0).unwrap() {
            let ancestors = dim.roll_up(&bottom, &params.member(0, index), &top);
            assert_eq!(ancestors.len(), 1);
        }
    }

    #[test]
    fn drill_down_returns_fanout_children() {
        let params = DimensionParams::new("Geo", 3, 5);
        let dim = generate_linear_dimension(&params).unwrap();
        let children = dim.drill_down(
            &params.category(1),
            &params.member(1, 0),
            &params.category(0),
        );
        assert_eq!(children.len(), 5);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let params = DimensionParams::new("X", 0, 0);
        assert_eq!(params.depth, 1);
        assert_eq!(params.fanout, 1);
        let dim = generate_linear_dimension(&params).unwrap();
        assert_eq!(dim.member_count(), 1);
    }

    /// The regression the checked math pins down: the old unchecked
    /// `fanout.pow(depth - 1 - level)` wrapped (release) or panicked
    /// (debug) on deep/wide sweeps — now it is a clear, typed error.
    #[test]
    fn deep_wide_sweeps_error_instead_of_overflowing() {
        // 10^79 is far past u64.
        let wide = DimensionParams::new("Wide", 80, 10);
        let err = wide.members_at(0).unwrap_err();
        assert!(matches!(
            &err,
            DimGenError::Overflow {
                level: Some(0),
                fanout: 10,
                ..
            }
        ));
        assert!(err.to_string().contains("overflows u64"));
        assert!(wide.total_members().is_err());
        assert!(generate_linear_dimension(&wide).is_err());
        // 2^64 overflows, 2^63 still fits.
        let deep = DimensionParams::new("Deep", 65, 2);
        assert!(deep.members_at(0).is_err());
        assert_eq!(deep.members_at(1), Ok(1u64 << 63));
    }

    /// The extreme that *just* fits: a depth-64 binary chain has
    /// `2^64 - 1 = u64::MAX` members in total — every level's count and the
    /// sum are representable, so checked math must accept it.
    #[test]
    fn maximal_representable_sweep_is_accepted() {
        let params = DimensionParams::new("Max", 64, 2);
        assert_eq!(params.members_at(0), Ok(1u64 << 63));
        assert_eq!(params.total_members(), Ok(u64::MAX));
        // One more level and the *sum* overflows even though no single
        // level does more than double.
        let over = DimensionParams::new("Over", 65, 2);
        assert!(matches!(
            over.total_members().unwrap_err(),
            DimGenError::Overflow { level: None, .. }
                | DimGenError::Overflow { level: Some(_), .. }
        ));
    }

    #[test]
    fn out_of_range_levels_are_reported() {
        let params = DimensionParams::new("Geo", 3, 2);
        let err = params.members_at(3).unwrap_err();
        assert!(matches!(
            err,
            DimGenError::LevelOutOfRange {
                level: 3,
                depth: 3,
                ..
            }
        ));
        assert!(err.to_string().contains("out of range"));
    }
}
