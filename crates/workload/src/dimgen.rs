//! Synthetic dimension generation.
//!
//! The paper's evaluation is a running example; to validate its complexity
//! claims (PTIME data complexity, the cost of upward vs. downward
//! navigation) we need dimensions whose depth, fan-out and member counts can
//! be swept.  [`generate_linear_dimension`] builds a chain-shaped dimension
//! (like `Hospital` and `Time` in Fig. 1) with a configurable branching
//! factor per level.

use ontodq_mdm::{DimensionInstance, DimensionSchema};
use ontodq_relational::Value;

/// Parameters of a synthetic linear dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionParams {
    /// Dimension name; also used as the member-name prefix.
    pub name: String,
    /// Number of category levels, bottom to top (≥ 1).
    pub depth: usize,
    /// Fan-out: each member of level `i+1` has this many children at level
    /// `i`.  The top level has exactly one member.
    pub fanout: usize,
}

impl DimensionParams {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, depth: usize, fanout: usize) -> Self {
        Self {
            name: name.into(),
            depth: depth.max(1),
            fanout: fanout.max(1),
        }
    }

    /// The category name of level `level` (0 = bottom).
    pub fn category(&self, level: usize) -> String {
        format!("{}L{}", self.name, level)
    }

    /// The number of members at `level` (the top level has one member).
    pub fn members_at(&self, level: usize) -> usize {
        self.fanout.pow((self.depth - 1 - level) as u32)
    }

    /// Total members across all levels.
    pub fn total_members(&self) -> usize {
        (0..self.depth).map(|l| self.members_at(l)).sum()
    }

    /// The member name of index `index` at `level`.
    pub fn member(&self, level: usize, index: usize) -> Value {
        Value::str(format!("{}_{}_{}", self.name, level, index))
    }
}

/// Generate a linear (chain) dimension instance from parameters.
///
/// Level `depth-1` is the single-member top; each member of level `i+1` has
/// `fanout` children at level `i`, numbered consecutively, so the instance is
/// strict and homogeneous by construction.
pub fn generate_linear_dimension(params: &DimensionParams) -> DimensionInstance {
    let categories: Vec<String> = (0..params.depth).map(|l| params.category(l)).collect();
    let schema = DimensionSchema::chain(params.name.clone(), categories.clone());
    let mut instance = DimensionInstance::new(schema);
    // Top level member(s).
    for index in 0..params.members_at(params.depth - 1) {
        instance
            .add_member(
                &categories[params.depth - 1],
                params.member(params.depth - 1, index),
            )
            .expect("top category exists");
    }
    // Children level by level, top-down.
    for level in (0..params.depth - 1).rev() {
        let child_category = &categories[level];
        let parent_category = &categories[level + 1];
        for child_index in 0..params.members_at(level) {
            let parent_index = child_index / params.fanout;
            instance
                .add_rollup(
                    child_category,
                    params.member(level, child_index),
                    parent_category,
                    params.member(level + 1, parent_index),
                )
                .expect("adjacent categories");
        }
    }
    instance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_counts_follow_fanout() {
        let params = DimensionParams::new("Geo", 4, 3);
        assert_eq!(params.members_at(3), 1);
        assert_eq!(params.members_at(2), 3);
        assert_eq!(params.members_at(1), 9);
        assert_eq!(params.members_at(0), 27);
        assert_eq!(params.total_members(), 1 + 3 + 9 + 27);
    }

    #[test]
    fn generated_dimension_is_valid_strict_homogeneous() {
        let params = DimensionParams::new("Geo", 4, 3);
        let dim = generate_linear_dimension(&params);
        assert!(dim.validate().is_ok());
        assert!(dim.strictness_violations().is_empty());
        assert!(dim.homogeneity_violations().is_empty());
        assert_eq!(dim.member_count(), params.total_members());
    }

    #[test]
    fn rollup_reaches_the_single_top_member() {
        let params = DimensionParams::new("Geo", 3, 4);
        let dim = generate_linear_dimension(&params);
        let bottom = params.category(0);
        let top = params.category(2);
        for index in 0..params.members_at(0) {
            let ancestors = dim.roll_up(&bottom, &params.member(0, index), &top);
            assert_eq!(ancestors.len(), 1);
        }
    }

    #[test]
    fn drill_down_returns_fanout_children() {
        let params = DimensionParams::new("Geo", 3, 5);
        let dim = generate_linear_dimension(&params);
        let children = dim.drill_down(
            &params.category(1),
            &params.member(1, 0),
            &params.category(0),
        );
        assert_eq!(children.len(), 5);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let params = DimensionParams::new("X", 0, 0);
        assert_eq!(params.depth, 1);
        assert_eq!(params.fanout, 1);
        let dim = generate_linear_dimension(&params);
        assert_eq!(dim.member_count(), 1);
    }
}
