//! A scaled version of the paper's hospital scenario.
//!
//! The running example has 4 wards, 6 measurements and a handful of nurses.
//! To measure how the pieces behave as data grows (the PTIME-in-data claims
//! of Section IV, the cost of navigation, the throughput of quality
//! assessment), this module generates a hospital of configurable size that
//! keeps the *shape* of the original: a Ward → Unit → Institution hierarchy,
//! `PatientWard` / `WorkingSchedules` / `Thermometer` categorical relations,
//! a `Measurements` instance under assessment, and the same rules, EGD and
//! quality context as Example 7.

use ontodq_core::Context;
use ontodq_mdm::{
    CategoricalAttribute, CategoricalRelationSchema, DimensionInstance, DimensionSchema, MdOntology,
};
use ontodq_relational::{Database, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size parameters of the scaled hospital.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HospitalScale {
    /// Number of units; unit 0 is the "Standard"-like quality unit.
    pub units: usize,
    /// Wards per unit.
    pub wards_per_unit: usize,
    /// Number of patients.
    pub patients: usize,
    /// Number of days.
    pub days: usize,
    /// Number of measurement tuples in the instance under assessment.
    pub measurements: usize,
    /// RNG seed, so workloads are reproducible across runs.
    pub seed: u64,
}

impl HospitalScale {
    /// A small default scale (a few times the paper's example).
    pub fn small() -> Self {
        Self {
            units: 3,
            wards_per_unit: 2,
            patients: 8,
            days: 6,
            measurements: 64,
            seed: 7,
        }
    }

    /// A scale with roughly `n` measurement tuples and proportionally many
    /// dimension members — used for data-complexity sweeps.
    pub fn with_measurements(n: usize) -> Self {
        Self {
            units: 4,
            wards_per_unit: 4,
            patients: (n / 8).max(4),
            days: 30,
            measurements: n,
            seed: 7,
        }
    }

    /// Total number of wards.
    pub fn ward_count(&self) -> usize {
        self.units * self.wards_per_unit
    }
}

/// A generated scaled-hospital workload.
#[derive(Debug, Clone)]
pub struct ScaledHospital {
    /// The size parameters used.
    pub scale: HospitalScale,
    /// The multidimensional ontology (dimensions, categorical data, rules).
    pub ontology: MdOntology,
    /// The instance under assessment (a `Measurements` relation).
    pub instance: Database,
}

impl ScaledHospital {
    /// The quality-assessment context for this workload (same shape as the
    /// paper's Example 7 context).
    pub fn context(&self) -> Context {
        Context::builder(format!("scaled-hospital-{}", self.scale.measurements))
            .ontology(self.ontology.clone())
            .copy_relation("Measurements")
            .quality_predicate(
                "TakenByNurse",
                "measurements are associated with the on-duty nurse and her certification status",
                &[
                    "TakenByNurse(t, p, n, y) :- WorkingSchedules(u, d, n, y), DayTime(d, t), PatientUnit(u, d, p).",
                ],
            )
            .quality_predicate(
                "TakenWithTherm",
                "standard-care measurements are taken with brand B1 thermometers",
                &["TakenWithTherm(t, p, B1) :- PatientUnit(Unit_0, d, p), DayTime(d, t)."],
            )
            .contextual_rule(
                "MeasurementsExt(t, p, v, y, b) :- Measurements_c(t, p, v), TakenByNurse(t, p, n, y), TakenWithTherm(t, p, b).",
            )
            .quality_version(
                "Measurements",
                &[
                    "Measurements_q(t, p, v) :- MeasurementsExt(t, p, v, y, b), y = \"cert.\", b = B1.",
                ],
            )
            .build()
            .expect("the scaled-hospital context is well-formed")
    }
}

fn day_name(index: usize) -> String {
    format!("Day_{index}")
}

fn time_value(day: usize, minute_of_day: usize) -> Value {
    Value::time((day as i64) * 24 * 60 + minute_of_day as i64)
}

/// Generate a scaled hospital workload.
pub fn generate(scale: &HospitalScale) -> ScaledHospital {
    let mut rng = StdRng::seed_from_u64(scale.seed);

    // Hospital dimension.
    let hospital_schema =
        DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"]);
    let mut hospital = DimensionInstance::new(hospital_schema);
    for unit in 0..scale.units {
        let unit_name = format!("Unit_{unit}");
        for ward in 0..scale.wards_per_unit {
            let ward_name = format!("Ward_{unit}_{ward}");
            hospital
                .add_rollup("Ward", ward_name, "Unit", unit_name.clone())
                .unwrap();
        }
        hospital
            .add_rollup("Unit", unit_name, "Institution", format!("H{}", unit % 2))
            .unwrap();
    }
    for h in ["H0", "H1"] {
        hospital
            .add_rollup("Institution", h, "AllHospital", "all")
            .unwrap();
    }

    // Time dimension: minutes → days → months (one month per 30 days).
    let time_schema = DimensionSchema::chain("Time", ["Time", "Day", "Month", "AllTime"]);
    let mut time = DimensionInstance::new(time_schema);
    let minutes_per_day = [9 * 60, 12 * 60, 15 * 60, 18 * 60];
    for day in 0..scale.days {
        for minute in minutes_per_day {
            time.add_rollup("Time", time_value(day, minute), "Day", day_name(day))
                .unwrap();
        }
        time.add_rollup("Day", day_name(day), "Month", format!("Month_{}", day / 30))
            .unwrap();
    }
    for month in 0..=(scale.days.saturating_sub(1) / 30) {
        time.add_rollup("Month", format!("Month_{month}"), "AllTime", "all")
            .unwrap();
    }

    // Ontology with the categorical relations of the running example.
    let mut ontology = MdOntology::new("scaled-hospital");
    ontology.add_dimension(hospital);
    ontology.add_dimension(time);
    for schema in [
        CategoricalRelationSchema::new(
            "PatientWard",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ),
        CategoricalRelationSchema::new(
            "PatientUnit",
            vec![
                CategoricalAttribute::categorical("Unit", "Hospital", "Unit"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ),
        CategoricalRelationSchema::new(
            "WorkingSchedules",
            vec![
                CategoricalAttribute::categorical("Unit", "Hospital", "Unit"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Nurse"),
                CategoricalAttribute::non_categorical("Type"),
            ],
        ),
        CategoricalRelationSchema::new(
            "Shifts",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Nurse"),
                CategoricalAttribute::non_categorical("Shift"),
            ],
        ),
    ] {
        ontology.add_relation(schema);
    }

    // Each patient is in one ward per day.
    let ward_of = |rng: &mut StdRng| {
        let unit = rng.gen_range(0..scale.units);
        let ward = rng.gen_range(0..scale.wards_per_unit);
        (format!("Ward_{unit}_{ward}"), format!("Unit_{unit}"))
    };
    let mut patient_day_ward: Vec<(usize, usize, String, String)> = Vec::new();
    for patient in 0..scale.patients {
        for day in 0..scale.days {
            let (ward, unit) = ward_of(&mut rng);
            patient_day_ward.push((patient, day, ward.clone(), unit));
            ontology
                .add_tuple(
                    "PatientWard",
                    [ward, day_name(day), format!("Patient_{patient}")],
                )
                .unwrap();
        }
    }

    // One nurse per unit per day, alternating certification status.
    for unit in 0..scale.units {
        for day in 0..scale.days {
            let nurse = format!("Nurse_{unit}_{}", day % 3);
            let status = if (unit + day) % 3 == 0 {
                "non-c."
            } else {
                "cert."
            };
            ontology
                .add_tuple(
                    "WorkingSchedules",
                    [
                        format!("Unit_{unit}"),
                        day_name(day),
                        nurse,
                        status.to_string(),
                    ],
                )
                .unwrap();
        }
    }

    // Dimensional rules (7) and (8), same as the paper.
    ontology
        .add_rule_text("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).")
        .unwrap();
    ontology
        .add_rule_text("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).")
        .unwrap();

    // The instance under assessment: random measurements.
    let mut instance = Database::new();
    for _ in 0..scale.measurements {
        let (patient, day, _, _) =
            patient_day_ward[rng.gen_range(0..patient_day_ward.len())].clone();
        let minute = minutes_per_day[rng.gen_range(0..minutes_per_day.len())];
        let temperature = 36.0 + rng.gen_range(0..40) as f64 / 10.0;
        instance
            .insert(
                "Measurements",
                Tuple::new(vec![
                    time_value(day, minute),
                    Value::str(format!("Patient_{patient}")),
                    Value::double(temperature),
                ]),
            )
            .unwrap();
    }

    ScaledHospital {
        scale: scale.clone(),
        ontology,
        instance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_core::assess;

    #[test]
    fn generated_workload_is_valid_and_reproducible() {
        let scale = HospitalScale::small();
        let a = generate(&scale);
        let b = generate(&scale);
        assert!(a.ontology.validate().is_ok());
        assert_eq!(
            a.instance.relation("Measurements").unwrap().len(),
            b.instance.relation("Measurements").unwrap().len()
        );
        assert_eq!(a.ontology.summary(), b.ontology.summary());
        // Duplicates may collapse, but most measurements survive.
        assert!(a.instance.relation("Measurements").unwrap().len() <= scale.measurements);
    }

    #[test]
    fn scale_accessors() {
        let scale = HospitalScale::small();
        assert_eq!(scale.ward_count(), 6);
        let big = HospitalScale::with_measurements(1000);
        assert_eq!(big.measurements, 1000);
        assert!(big.patients >= 4);
    }

    #[test]
    fn assessment_of_scaled_workload_produces_quality_subset() {
        let workload = generate(&HospitalScale::small());
        let context = workload.context();
        let result = assess(&context, &workload.instance);
        let metrics = result.metrics.relations.get("Measurements").unwrap();
        assert_eq!(
            metrics.original_count,
            workload.instance.relation("Measurements").unwrap().len()
        );
        // The quality version never adds tuples in this scenario.
        assert_eq!(metrics.added, 0);
        assert!(metrics.quality_count <= metrics.original_count);
        // Some measurements are in the quality unit with a certified nurse.
        assert!(metrics.quality_count > 0);
    }

    #[test]
    fn different_seeds_change_the_data() {
        let mut scale = HospitalScale::small();
        let a = generate(&scale);
        scale.seed = 99;
        let b = generate(&scale);
        let ta: Vec<_> = a
            .instance
            .relation("Measurements")
            .unwrap()
            .tuples()
            .to_vec();
        let tb: Vec<_> = b
            .instance
            .relation("Measurements")
            .unwrap()
            .tuples()
            .to_vec();
        assert_ne!(ta, tb);
    }
}
