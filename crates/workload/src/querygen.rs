//! Synthetic query workloads over the scaled hospital.
//!
//! The demand-driven query path (`ontodq_chase::ChaseEngine::chase_for_query`)
//! wins exactly where a query is *selective* — the doctor asking for one
//! patient's measurements touches a sliver of the contextual ontology, while
//! a full scan demands everything.  This module generates query workloads
//! that sweep that selectivity axis over a [`crate::HospitalScale`], so
//! `experiments query_perf` can chart demand-driven vs. full-materialization
//! latency across the spectrum (and the integration suite can assert answer
//! equality on randomized query sets).
//!
//! All query texts use the server protocol's bare-body spelling, so the same
//! strings drive `?q-` / `?d-` sessions and the in-process
//! `ontodq_core::quality_answers_on_demand` path.

use crate::scaled_hospital::HospitalScale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How much of the instance a query class touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selectivity {
    /// A point lookup — one patient's measurements (the doctor's query
    /// shape): demand is a single magic seed.
    Point,
    /// A narrow slice — one patient *in the quality unit*: demand binds two
    /// positions of the generated `PatientUnit` data.
    Narrow,
    /// A broad scan — every measurement (or every patient of a unit): no
    /// usable binding, relevance restriction only.
    Broad,
}

impl fmt::Display for Selectivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selectivity::Point => write!(f, "point"),
            Selectivity::Narrow => write!(f, "narrow"),
            Selectivity::Broad => write!(f, "broad"),
        }
    }
}

/// One generated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Short human-readable label (used in benchmark tables/JSON).
    pub label: String,
    /// The query body in protocol spelling (no trailing period needed).
    pub text: String,
    /// The selectivity class the query was generated for.
    pub class: Selectivity,
}

/// Generate a selectivity-sweeping query workload over `scale`:
/// `per_class` point lookups and narrow slices (patients drawn
/// deterministically from `seed`) plus the broad scans.  Queries reference
/// only relations/members every scaled-hospital instance has, so the same
/// workload is valid across scales.
pub fn generate_queries(scale: &HospitalScale, per_class: usize, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::new();
    let patients = scale.patients.max(1);
    for i in 0..per_class {
        let patient = rng.gen_range(0..patients);
        queries.push(QuerySpec {
            label: format!("point-{i}-patient-{patient}"),
            text: format!("Measurements(t, p, v), p = \"Patient_{patient}\""),
            class: Selectivity::Point,
        });
    }
    for i in 0..per_class {
        let patient = rng.gen_range(0..patients);
        queries.push(QuerySpec {
            label: format!("narrow-{i}-patient-{patient}"),
            text: format!("PatientUnit(Unit_0, d, p), p = \"Patient_{patient}\""),
            class: Selectivity::Narrow,
        });
    }
    queries.push(QuerySpec {
        label: "broad-measurements".to_string(),
        text: "Measurements(t, p, v)".to_string(),
        class: Selectivity::Broad,
    });
    queries.push(QuerySpec {
        label: "broad-quality-unit".to_string(),
        text: "PatientUnit(Unit_0, d, p)".to_string(),
        class: Selectivity::Broad,
    });
    queries
}

/// The most selective single query of the workload — the doctor's shape,
/// pinned to one deterministic patient.  Used by smoke tests and the
/// benchmark's headline speedup number.
pub fn doctors_style_query(scale: &HospitalScale, seed: u64) -> QuerySpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let patient = rng.gen_range(0..scale.patients.max(1));
    QuerySpec {
        label: format!("doctor-patient-{patient}"),
        text: format!("Measurements(t, p, v), p = \"Patient_{patient}\""),
        class: Selectivity::Point,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let scale = HospitalScale::small();
        let a = generate_queries(&scale, 3, 7);
        let b = generate_queries(&scale, 3, 7);
        assert_eq!(a, b);
        let c = generate_queries(&scale, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn all_classes_are_represented() {
        let scale = HospitalScale::small();
        let queries = generate_queries(&scale, 2, 7);
        assert_eq!(queries.len(), 2 + 2 + 2);
        for class in [Selectivity::Point, Selectivity::Narrow, Selectivity::Broad] {
            assert!(queries.iter().any(|q| q.class == class), "missing {class}");
        }
    }

    #[test]
    fn query_texts_reference_existing_patients() {
        let scale = HospitalScale::small();
        for q in generate_queries(&scale, 4, 99) {
            if let Some(start) = q.text.find("Patient_") {
                let digits: String = q.text[start + "Patient_".len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                let id: usize = digits.parse().unwrap();
                assert!(id < scale.patients, "{} out of range", q.text);
            }
        }
    }

    #[test]
    fn doctors_query_is_a_point_lookup() {
        let q = doctors_style_query(&HospitalScale::small(), 7);
        assert_eq!(q.class, Selectivity::Point);
        assert!(q.text.starts_with("Measurements"));
    }
}
