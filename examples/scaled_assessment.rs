//! Scaled quality assessment: the hospital scenario at synthetic sizes.
//!
//! Generates scaled versions of the hospital workload (more wards, patients,
//! days and measurements), runs the full assessment pipeline on each, and
//! prints how the work grows with the data — an executable version of the
//! paper's PTIME-in-data claim, and a demonstration of the workload
//! generators used by the benchmark harness.
//!
//! Run with: `cargo run --release --bin scaled_assessment`

use ontodq_core::assess;
use ontodq_workload::{generate, HospitalScale};
use std::time::Instant;

fn main() {
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "measurements", "members", "chase-tuples", "quality", "retention", "rounds", "millis"
    );
    for &measurements in &[50usize, 100, 200, 400, 800] {
        let scale = HospitalScale::with_measurements(measurements);
        let workload = generate(&scale);
        let context = workload.context();

        let start = Instant::now();
        let result = assess(&context, &workload.instance);
        let elapsed = start.elapsed();

        let metrics = result.metrics.relations.get("Measurements").unwrap();
        println!(
            "{:>12} {:>10} {:>12} {:>12} {:>12.3} {:>10} {:>12.1}",
            metrics.original_count,
            workload.ontology.summary().members,
            result.chase.stats.tuples_added,
            metrics.quality_count,
            metrics.retention_ratio(),
            result.chase.stats.rounds,
            elapsed.as_secs_f64() * 1e3,
        );
    }

    println!("\nThe quality version is always a subset of the original instance here,");
    println!("and the retention ratio reflects how many measurements were taken in the");
    println!("quality unit by a certified nurse — the same conditions as Example 7.");
}
