//! Ontology analysis: the syntactic properties the paper's tractability
//! claims rest on.
//!
//! Compiles the hospital ontology to Datalog± and checks, programmatically,
//! the claims of Section III:
//!
//! * the dimensional rules fall in the weakly-sticky class (and here also in
//!   the weakly-acyclic class, since the dimension instances are fixed),
//! * the dimensional EGD (6) is separable from the TGDs,
//! * adding the form-(10) discharge rule keeps weak stickiness but moves
//!   nulls into categorical positions (the paper's separability caveat).
//!
//! Run with: `cargo run --bin ontology_analysis`

use ontodq_datalog::analysis;
use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, navigation};

fn main() {
    // ------------------------------------------------------------------
    // The base ontology: rules (7) and (8).
    // ------------------------------------------------------------------
    let ontology = hospital::ontology();
    let compiled = compile(&ontology);
    println!("== Compiled hospital ontology ==");
    println!("  predicates: {}", compiled.program.predicates().len());
    println!("  TGDs: {}", compiled.program.tgds.len());
    println!("  EGDs: {}", compiled.program.egds.len());
    println!(
        "  negative constraints: {}",
        compiled.program.constraints.len()
    );
    println!("  extensional tuples: {}", compiled.database.total_tuples());

    let report = analysis::classify(&compiled.program);
    println!("\n== Datalog± class membership (Section III claims) ==");
    println!("  {report}");
    assert!(report.weakly_sticky, "the paper's central syntactic claim");

    let separability = analysis::check_program(&compiled.program);
    println!("\n== EGD separability ==");
    for egd in &separability.egds {
        println!(
            "  EGD #{}: separable = {} (offending positions: {:?})",
            egd.egd_index,
            egd.separable,
            egd.offending_positions
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
        );
    }
    assert!(separability.all_separable());

    // ------------------------------------------------------------------
    // Navigation directions and rewritability.
    // ------------------------------------------------------------------
    println!("\n== Navigation report ==");
    let nav = navigation::report(&ontology);
    for (index, direction) in &nav.rules {
        println!("  rule #{index}: {direction}");
    }
    println!(
        "  FO rewriting applicable (upward-only): {}",
        nav.upward_only
    );

    // ------------------------------------------------------------------
    // Adding the form-(10) discharge rule (Example 6).
    // ------------------------------------------------------------------
    let extended = hospital::ontology_with_discharge_rule();
    let compiled_ext = compile(&extended);
    let report_ext = analysis::classify(&compiled_ext.program);
    println!("\n== With the form-(10) discharge rule (Example 6) ==");
    println!("  {report_ext}");
    assert!(
        report_ext.weakly_sticky,
        "form-(10) rules preserve weak stickiness"
    );

    // A unit-level EGD is no longer syntactically separable once rule (9)
    // can put nulls into the Unit position of PatientUnit.
    let mut with_unit_egd = extended.clone();
    with_unit_egd
        .add_rule_text("u = u2 :- PatientUnit(u, d, p), PatientUnit(u2, d, p).")
        .unwrap();
    let compiled_egd = compile(&with_unit_egd);
    let separability_ext = analysis::check_program(&compiled_egd.program);
    println!(
        "  a unit-level EGD added on top: all separable = {} (the paper's caveat)",
        separability_ext.all_separable()
    );
    assert!(!separability_ext.all_separable());

    // ------------------------------------------------------------------
    // The compiled program, printed in the crate's Datalog± syntax.
    // ------------------------------------------------------------------
    println!("\n== Rules and constraints of the compiled base ontology ==");
    for tgd in &compiled.program.tgds {
        println!("  {tgd}");
    }
    for egd in &compiled.program.egds {
        println!("  {egd}");
    }
    for nc in &compiled.program.constraints {
        println!("  {nc}");
    }
}
