//! Quickstart: the paper's running example end to end.
//!
//! Reproduces Tables I and II and the doctor's query of Examples 1 and 7:
//! the `Measurements` table is mapped into a multidimensional context, the
//! quality version `Measurements^q` is derived through upward dimensional
//! navigation (PatientWard → PatientUnit) plus the thermometer guideline and
//! nurse-certification conditions, and the doctor's query is answered with
//! quality answers.
//!
//! Run with: `cargo run --bin quickstart`

use ontodq_core::clean_query::{plain_answers, quality_answers};
use ontodq_core::{assess, scenarios};
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::Value;

fn main() {
    // ------------------------------------------------------------------
    // Table I: the instance under quality assessment.
    // ------------------------------------------------------------------
    let instance = hospital::measurements_database();
    println!("== Table I: Measurements (the instance D under assessment) ==");
    for tuple in instance.relation("Measurements").unwrap().iter() {
        println!("  {tuple}");
    }

    // ------------------------------------------------------------------
    // The context: contextual copy of Measurements, the hospital MD
    // ontology, quality predicates and the quality-version definition.
    // ------------------------------------------------------------------
    let context = scenarios::hospital_context();
    println!("\n== Context ==\n  {}", context.summary());
    for qp in &context.quality_predicates {
        println!("  quality predicate {}: {}", qp.name, qp.description);
    }

    // ------------------------------------------------------------------
    // Assessment: chase the combined program, extract Measurements^q.
    // ------------------------------------------------------------------
    let assessment = assess(&context, &instance);
    println!("\n== chase: {} ==", assessment.chase.stats);
    println!(
        "== constraint violations observed in the contextual instance: {} ==",
        assessment.chase.violations.len()
    );

    println!("\n== Quality version Measurements^q ==");
    for tuple in assessment.quality_tuples("Measurements") {
        println!("  {tuple}");
    }
    println!("\n== Table II: Tom Waits' quality measurements ==",);
    for tuple in assessment
        .quality_tuples("Measurements")
        .iter()
        .filter(|t| t.get(1) == Some(&Value::str(hospital::TOM_WAITS)))
    {
        println!("  {tuple}");
    }

    // ------------------------------------------------------------------
    // Quality query answering (Example 7): the doctor's query.
    // ------------------------------------------------------------------
    let query = scenarios::doctors_query();
    println!("\n== The doctor's query ==\n  {query}");
    let plain = plain_answers(&instance, &query);
    let quality = quality_answers(&context, &assessment, &query);
    println!("  plain answers   ({}):", plain.len());
    for t in plain.iter() {
        println!("    {t}");
    }
    println!("  quality answers ({}):", quality.len());
    for t in quality.iter() {
        println!("    {t}");
    }

    // ------------------------------------------------------------------
    // Quality metrics: how much does D depart from D^q?
    // ------------------------------------------------------------------
    println!("\n== Quality metrics ==\n{}", assessment.metrics);
}
