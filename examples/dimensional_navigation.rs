//! Dimensional navigation: upward and downward data generation and the
//! query-answering algorithms of Section IV.
//!
//! Reproduces Examples 2 and 5 of the paper (Mark's shifts, obtained by
//! downward navigation through rule (8)), and contrasts the three
//! query-answering strategies implemented in `ontodq-qa`:
//! chase-then-evaluate, the deterministic resolution algorithm
//! (`DeterministicWSQAns`), and first-order rewriting (for the upward-only
//! fragment).
//!
//! Run with: `cargo run --bin dimensional_navigation`

use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, navigation};
use ontodq_qa::{answer_by_rewriting, ConjunctiveQuery, DeterministicWsqAns, MaterializedEngine};
use ontodq_relational::Value;

fn main() {
    let ontology = hospital::ontology();
    println!("== Hospital ontology ==\n  {}", ontology.summary());

    // ------------------------------------------------------------------
    // Navigation analysis: which rules navigate upward / downward?
    // ------------------------------------------------------------------
    let report = navigation::report(&ontology);
    println!("\n== Navigation analysis ==");
    for (index, direction) in &report.rules {
        let label = ontology.rules()[*index]
            .label
            .clone()
            .unwrap_or_else(|| format!("rule #{index}"));
        println!("  {label}: {direction}");
    }
    println!("  upward-only ontology: {}", report.upward_only);
    println!(
        "  invents values (labeled nulls): {}",
        report.value_invention
    );

    let compiled = compile(&ontology);

    // ------------------------------------------------------------------
    // Downward navigation (Examples 2 and 5): Mark's shifts in W1 / W2.
    // ------------------------------------------------------------------
    println!("\n== Example 2 / 5: on which dates does Mark work in W2? ==");
    let materialized = MaterializedEngine::new(&compiled.program, &compiled.database);
    let resolution = DeterministicWsqAns::new(&compiled.program, &compiled.database);
    for ward in ["W1", "W2"] {
        let query =
            ConjunctiveQuery::parse(&format!("Q(d) :- Shifts({ward}, d, \"Mark\", s).")).unwrap();
        let by_chase = materialized.certain_answers(&query);
        let by_resolution = resolution.answer_open(&query);
        println!(
            "  ward {ward}: chase-based answers = {:?}, resolution-based answers = {:?}",
            by_chase
                .to_vec()
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>(),
            by_resolution
                .to_vec()
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>(),
        );
        assert_eq!(by_chase, by_resolution);
    }

    // The generated Shifts tuples carry labeled nulls for the unknown shift.
    println!("\n== Generated Shifts tuples for Mark (note the labeled nulls) ==");
    for tuple in materialized
        .materialized()
        .relation("Shifts")
        .unwrap()
        .iter()
        .filter(|t| t.get(2) == Some(&Value::str("Mark")))
    {
        println!("  {tuple}");
    }

    // ------------------------------------------------------------------
    // Upward navigation (Example 1): which units was Tom Waits in?
    // ------------------------------------------------------------------
    println!("\n== Upward navigation: Tom Waits' units per day ==");
    let query = ConjunctiveQuery::parse("Q(u, d) :- PatientUnit(u, d, \"Tom Waits\").").unwrap();
    for tuple in materialized.certain_answers(&query).iter() {
        println!("  {tuple}");
    }

    // ------------------------------------------------------------------
    // FO rewriting on the upward-only fragment: PatientUnit queries can be
    // answered without any chase.
    // ------------------------------------------------------------------
    println!("\n== FO rewriting (upward-only fragment) ==");
    let mut upward_only = ontodq_mdm::MdOntology::new("hospital-upward");
    upward_only.add_dimension(hospital::hospital_dimension());
    upward_only.add_dimension(hospital::time_dimension());
    for schema in hospital::categorical_schemas() {
        upward_only.add_relation(schema);
    }
    for relation in hospital::ontology().data().relations() {
        for tuple in relation.iter() {
            upward_only
                .add_tuple(relation.name(), tuple.values().to_vec())
                .unwrap();
        }
    }
    upward_only.add_rule(hospital::patient_unit_rule());
    assert!(navigation::is_upward_only(&upward_only));
    let compiled_upward = compile(&upward_only);
    let query =
        ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".").unwrap();
    let rewriting = ontodq_qa::rewrite(&compiled_upward.program, &query);
    println!("  query: {query}");
    println!("  rewriting ({} disjuncts):", rewriting.len());
    for disjunct in &rewriting.disjuncts {
        println!("    {disjunct}");
    }
    let answers = answer_by_rewriting(&compiled_upward.program, &compiled_upward.database, &query);
    println!(
        "  answers evaluated directly on the extensional database: {:?}",
        answers
            .to_vec()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );
}
