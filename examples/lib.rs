//! Shared helpers for the ontodq examples.
